"""II-search policies: how a modulo scheduler walks the II range.

Both IMS and DMS reduce to the same outer loop — pick an II candidate,
run one or more scheduling *attempts* at it, move on — but the paper
(and the seed implementation) hard-wires the simplest walk: every II
from MII upward, with the full restart budget burned at every rung.
This module extracts that driver into pluggable :class:`SearchPolicy`
objects over an :class:`AttemptRunner` protocol the schedulers provide:

* ``ladder`` — the reference walk, bit-identical to the seed: rungs
  ascending, every salt in order, first success wins.
* ``adaptive`` — the default: gallops up the II range (MII, +1, +2,
  +4, ...) with single evidence-seeded probes to find a feasible
  *incumbent* fast, bisects the last gap down, then confirms minimality
  with a plain ascending sweep of every rung below the incumbent.
  Attempts run under :class:`AttemptLimits` futility cutoffs, and
  failed probes hand :class:`FailureEvidence` to the next probe's
  cluster-preference seeding.
* ``portfolio`` — the ladder walk with each rung's restart attempts
  fanned across a process pool (for batch compiles on idle cores); the
  lowest-salt success wins, so the result is identical to ``ladder``.

II contract: ``ladder`` defines the reference II.  ``portfolio`` matches
it (and its schedule) by construction.  ``adaptive`` confirms every rung
below its incumbent with the ladder's own salt sequence, so it can be
*worse* than the ladder only when a futility cutoff aborts an attempt
the ladder would have finished successfully — the default
``thrash_cap_ratio`` leaves ~2x headroom over the largest thrash ever
observed in a successful attempt.  It can be *better* (lower II) when an
evidence-seeded probe succeeds at a rung where every plain ladder salt
fails; the confirm sweep never revokes such an incumbent.  Neither
divergence occurs anywhere on the 343-case golden corpus, where exact II
equality is pinned by ``tests/test_search_policies.py``.

The per-attempt bookkeeping (what one attempt is, how it mutates its
graph copy) stays in ``dms.py``/``ims.py``; this module owns only the
order in which attempts are asked for and how their stats aggregate.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import IIOverflowError, SchedulingError
from ..ir.ddg import DDG
from .heights import compute_heights, height_edge_terms
from .result import SchedulerStats
from .schedule import Placement

#: Registered search-policy names (mirrors ``SchedulerConfig.search``).
SEARCH_POLICY_NAMES: Tuple[str, ...] = ("ladder", "adaptive", "portfolio")

#: Re-pops of one op beyond which a failed attempt reports it as "hot".
_HOT_POP_THRESHOLD = 4


# ----------------------------------------------------------------------
# Attempt-level value types
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AttemptLimits:
    """Futility cutoffs an attempt may honour (``None`` field = off).

    Attributes:
        thrash_cap: abort once any single operation has been re-popped
            (ejected and rescheduled) more than this many times.  Failed
            attempts livelock with one op cycling hundreds of times;
            successful attempts stay far below the default cap, so this
            cuts doomed attempts 3-5x short (heuristic — see the module
            docstring's II-equality contract).
        budget_infeasible_abort: abort as soon as the remaining budget is
            smaller than the number of unscheduled operations.  Each
            placement consumes one budget unit and schedules one op, so
            failure is already certain — this cutoff is outcome-exact.
    """

    thrash_cap: Optional[int] = None
    budget_infeasible_abort: bool = False


@dataclass(frozen=True)
class FailureEvidence:
    """What a failed attempt learned, for seeding the next probe.

    Attributes:
        hot_ops: operations that thrashed (re-popped more than
            :data:`_HOT_POP_THRESHOLD` times) or were still unscheduled
            when the attempt gave up.
        cluster_order: all clusters, least-loaded first at the moment of
            failure — where the next probe should steer its hot ops.
    """

    hot_ops: frozenset = frozenset()
    cluster_order: Tuple[int, ...] = ()


@dataclass
class AttemptOutcome:
    """Result of one scheduling attempt at one (II, salt).

    ``placements``/``work`` describe the finished schedule on success
    (``placements is None`` means failure); ``stats`` covers only this
    attempt, so policies can aggregate without double counting.  The
    fields are plain values (no :class:`PartialSchedule`), which keeps
    outcomes picklable for the ``portfolio`` process pool.
    """

    ii: int
    salt: int
    placements: Optional[Mapping[int, Placement]]
    work: DDG
    stats: SchedulerStats
    evidence: Optional[FailureEvidence] = None

    @property
    def ok(self) -> bool:
        return self.placements is not None


class AttemptRunner:
    """Protocol the schedulers implement to serve attempts to a policy.

    The base class owns the per-loop shared caches — the II-independent
    height edge terms and the per-II heights table, computed on the
    pristine graph (graph copies preserve op ids, so the tables stay
    valid for every attempt's working copy) — so every policy benefits
    from cross-rung reuse no matter how often it revisits a rung.
    Subclasses call :meth:`_bind` once and use :meth:`heights_for`.
    """

    #: Loop name for error reporting.
    loop_name: str = ""
    #: Salts a policy should try per rung (1 for the deterministic IMS).
    restarts_per_rung: int = 1

    def _bind(self, ddg: DDG, latencies) -> None:
        """Attach the loop and precompute the shared height caches."""
        self.ddg = ddg
        self.loop_name = ddg.name
        self._latencies = latencies
        self._height_terms = height_edge_terms(ddg, latencies)
        self._heights: Dict[int, Dict[int, int]] = {}

    def heights_for(self, ii: int) -> Dict[int, int]:
        heights = self._heights.get(ii)
        if heights is None:
            heights = compute_heights(
                self.ddg, self._latencies, ii, self._height_terms
            )
            self._heights[ii] = heights
        return heights

    def run(
        self,
        ii: int,
        salt: int,
        limits: Optional[AttemptLimits] = None,
        evidence: Optional[FailureEvidence] = None,
    ) -> AttemptOutcome:
        raise NotImplementedError

    def portfolio_payload(self) -> Optional[tuple]:
        """Picklable ``(kind, machine, latencies, config, ddg)`` spec for
        re-creating this runner in a pool worker, or ``None`` when the
        runner cannot cross a process boundary."""
        return None


@dataclass(frozen=True)
class AttemptRecord:
    """One line of a search's attempt log (for stats accounting tests)."""

    ii: int
    salt: int
    ok: bool
    stats: SchedulerStats


@dataclass
class SearchOutcome:
    """What a search policy hands back to the scheduler."""

    ii: int
    placements: Mapping[int, Placement]
    work: DDG
    stats: SchedulerStats
    trajectory: Tuple[int, ...]
    attempt_log: Tuple[AttemptRecord, ...]


# ----------------------------------------------------------------------
# Shared aggregation helper
# ----------------------------------------------------------------------


class _Tally:
    """Aggregates attempt outcomes exactly once each."""

    def __init__(self) -> None:
        self.stats = SchedulerStats()
        self.log: List[AttemptRecord] = []
        self._rungs: List[int] = []
        self._seen_rungs: set = set()

    def add(self, outcome: AttemptOutcome) -> None:
        if outcome.ii not in self._seen_rungs:
            self._seen_rungs.add(outcome.ii)
            self._rungs.append(outcome.ii)
            self.stats.ii_attempts += 1
        self.stats.restart_attempts += 1
        self.stats.merge(outcome.stats)
        self.log.append(
            AttemptRecord(outcome.ii, outcome.salt, outcome.ok, outcome.stats)
        )

    def outcome(self, winner: AttemptOutcome) -> SearchOutcome:
        # Trajectory: distinct rungs in first-attempt order, with the
        # achieved II moved to the end (the report's contract is that the
        # trajectory terminates at the result).
        rungs = [ii for ii in self._rungs if ii != winner.ii] + [winner.ii]
        return SearchOutcome(
            ii=winner.ii,
            placements=winner.placements,
            work=winner.work,
            stats=self.stats,
            trajectory=tuple(rungs),
            attempt_log=tuple(self.log),
        )


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------


class SearchPolicy:
    """Strategy for walking (II, salt) candidates until one schedules."""

    name: str = ""

    def search(self, runner: AttemptRunner, mii: int, config) -> SearchOutcome:
        """Find a schedule or raise :class:`IIOverflowError`."""
        raise NotImplementedError


class LadderPolicy(SearchPolicy):
    """The seed's exhaustive walk — the bit-identical reference.

    Rungs ascend from MII; every rung burns the full restart budget
    before the next is tried.  No cutoffs, no evidence: attempt ``k`` at
    rung ``r`` is exactly the seed scheduler's attempt ``k`` at ``r``,
    so emitted schedules are pinned by the golden-fingerprint suite.
    """

    name = "ladder"

    def search(self, runner: AttemptRunner, mii: int, config) -> SearchOutcome:
        max_ii = config.max_ii(mii)
        tally = _Tally()
        for ii in range(mii, max_ii + 1):
            for salt in range(runner.restarts_per_rung):
                outcome = runner.run(ii, salt)
                tally.add(outcome)
                if outcome.ok:
                    return tally.outcome(outcome)
        raise IIOverflowError(runner.loop_name, max_ii)


class AdaptivePolicy(SearchPolicy):
    """Galloping ladder with incumbent bisection and a confirming sweep.

    Three phases:

    1. **Gallop** — single salt-0 probes at MII, +1, +2, +4, ... (each
       seeded with the previous failure's evidence) until one succeeds:
       the *incumbent*.  Failed rungs this cheap probe visits would have
       cost the ladder the full restart budget.
    2. **Bisect** — binary search of the gap between the last galloped
       failure and the incumbent, lowering the incumbent while probes
       keep succeeding.
    3. **Confirm** — plain ascending sweep of every rung below the
       incumbent with the ladder's own salt sequence (skipping pairs the
       gallop already evaluated un-seeded), so the minimal feasible rung
       is found exactly as the ladder would.  The first success here is
       final: every lower rung has already been fully refuted.

    All attempts run under the config's futility cutoffs; probes after
    the first carry :class:`FailureEvidence` into cluster-preference
    seeding.  Evidence can only *add* feasibility — the confirm sweep
    still checks the plain attempts below the incumbent — so relative to
    the ladder the returned II can drop (an evidenced probe succeeding
    where every plain salt fails) but can rise only via a futility
    cutoff killing an attempt the ladder would have finished.  See the
    module docstring for the calibration of both margins.
    """

    name = "adaptive"

    def search(self, runner: AttemptRunner, mii: int, config) -> SearchOutcome:
        max_ii = config.max_ii(mii)
        limits = AttemptLimits(
            thrash_cap=config.thrash_cap_ratio * config.budget_ratio,
            budget_infeasible_abort=True,
        )
        tally = _Tally()
        # (ii, salt) pairs already evaluated *without* evidence seeding,
        # reusable by the confirm sweep.  Evidence-seeded probes are
        # different attempts and are deliberately not recorded here.
        plain_failed: set = set()
        evidence: Optional[FailureEvidence] = None

        def probe(ii: int) -> AttemptOutcome:
            nonlocal evidence
            outcome = runner.run(ii, 0, limits=limits, evidence=evidence)
            tally.add(outcome)
            if outcome.ok:
                return outcome
            if evidence is None:
                plain_failed.add((ii, 0))
            if outcome.evidence is not None:
                evidence = outcome.evidence
            return outcome

        # Phase 1: gallop (rungs MII+0, +1, +2, +4, +8, ...).
        incumbent: Optional[AttemptOutcome] = None
        last_failed = mii - 1
        offset = 0
        while mii + offset <= max_ii:
            ii = mii + offset
            outcome = probe(ii)
            if outcome.ok:
                incumbent = outcome
                break
            last_failed = ii
            offset = 1 if offset == 0 else offset * 2

        # Phase 2: bisect the final gallop gap (last_failed, incumbent].
        if incumbent is not None:
            lo, hi = last_failed + 1, incumbent.ii
            while lo < hi:
                mid = (lo + hi) // 2
                outcome = probe(mid)
                if outcome.ok:
                    incumbent, hi = outcome, mid
                else:
                    lo = mid + 1

        # Phase 3: plain ascending confirmation below the incumbent (or,
        # with no incumbent, over the whole range before overflowing).
        ceiling = incumbent.ii if incumbent is not None else max_ii + 1
        for ii in range(mii, ceiling):
            for salt in range(runner.restarts_per_rung):
                if (ii, salt) in plain_failed:
                    continue
                outcome = runner.run(ii, salt, limits=limits)
                tally.add(outcome)
                if outcome.ok:
                    # Every rung below ii is now fully refuted, so this
                    # is the minimal feasible II — no need to keep the
                    # (higher) incumbent.
                    return tally.outcome(outcome)
        if incumbent is None:
            raise IIOverflowError(runner.loop_name, max_ii)
        return tally.outcome(incumbent)


def _runner_from_payload(payload: tuple) -> AttemptRunner:
    """Rebuild an :class:`AttemptRunner` from its picklable payload."""
    kind, machine, latencies, config, ddg = payload
    if kind == "dms":
        from .dms import DistributedModuloScheduler

        return DistributedModuloScheduler(
            machine, latencies, config
        ).attempt_runner(ddg)
    if kind == "ims":
        from .ims import IterativeModuloScheduler

        return IterativeModuloScheduler(
            machine, latencies, config
        ).attempt_runner(ddg)
    # pragma: no cover - payload is produced by the runners
    raise SchedulingError(f"unknown portfolio runner kind {kind!r}")


#: Per-worker runner built by :func:`_pool_initializer`; lives for the
#: whole pool so the runner's cross-rung height caches stay warm too.
_POOL_RUNNER: Optional[AttemptRunner] = None


def _pool_initializer(payload: tuple) -> None:
    """Portfolio pool initializer: build the attempt runner once per
    worker process instead of re-pickling (machine, config, DDG) with
    every attempt job."""
    global _POOL_RUNNER
    _POOL_RUNNER = _runner_from_payload(payload)


def _pool_attempt(job: tuple) -> AttemptOutcome:
    """Portfolio pool worker: run one plain attempt on the resident
    runner (jobs carry only ``(ii, salt)``)."""
    ii, salt = job
    if _POOL_RUNNER is None:  # pragma: no cover - defensive
        raise SchedulingError("portfolio pool worker has no resident runner")
    return _POOL_RUNNER.run(ii, salt)


class PortfolioPolicy(SearchPolicy):
    """Ladder walk with each rung's restarts fanned across processes.

    Every salt of a rung is evaluated (in parallel when a pool is
    available, serially otherwise — same attempts either way, so the
    stats are mode-independent) and the lowest-salt success wins, which
    is exactly the attempt the serial ladder would have returned.  The
    trade: salts that the ladder would have skipped after an early
    success are still paid for, in exchange for rung latency equal to
    the slowest single attempt.  Worth it in batch compiles with idle
    cores; pointless for ``restarts_per_ii=1`` machines (IMS), where it
    degenerates to the serial ladder.

    Each executed attempt is tallied exactly once — the winner's stats
    are not re-merged when it is promoted to the result.
    """

    name = "portfolio"

    def search(self, runner: AttemptRunner, mii: int, config) -> SearchOutcome:
        max_ii = config.max_ii(mii)
        salts = runner.restarts_per_rung
        payload = runner.portfolio_payload()
        workers = config.search_workers
        if workers is None:
            import os

            workers = max(1, (os.cpu_count() or 2) - 1)
        workers = min(workers, salts)
        pool = None
        if workers > 1 and salts > 1 and payload is not None:
            try:
                from ..pools import spawn_pool

                # The initializer rebuilds the runner once per worker;
                # attempt jobs then carry only (ii, salt), so neither the
                # graph nor the machine crosses the pipe per attempt.
                pool = spawn_pool(
                    workers,
                    initializer=_pool_initializer,
                    initargs=(payload,),
                )
            except OSError:  # pragma: no cover - depends on the host
                pool = None
        tally = _Tally()
        try:
            for ii in range(mii, max_ii + 1):
                jobs = [(ii, salt) for salt in range(salts)]
                if pool is not None:
                    try:
                        outcomes = list(pool.map(_pool_attempt, jobs))
                    except (OSError, MemoryError, BrokenExecutor):  # pragma: no cover
                        pool.shutdown(wait=False)
                        pool = None
                        outcomes = [
                            runner.run(ii, salt) for salt in range(salts)
                        ]
                else:
                    outcomes = [runner.run(ii, salt) for salt in range(salts)]
                winner = None
                for outcome in outcomes:
                    tally.add(outcome)
                    if winner is None and outcome.ok:
                        winner = outcome
                if winner is not None:
                    return tally.outcome(winner)
            raise IIOverflowError(runner.loop_name, max_ii)
        finally:
            if pool is not None:
                pool.shutdown()


#: Shared policy instances (policies are stateless between searches).
SEARCH_POLICIES: Dict[str, SearchPolicy] = {
    policy.name: policy
    for policy in (LadderPolicy(), AdaptivePolicy(), PortfolioPolicy())
}


def get_search_policy(name: str) -> SearchPolicy:
    """Look up a search policy by its config name."""
    try:
        return SEARCH_POLICIES[name]
    except KeyError:
        raise SchedulingError(
            f"unknown search policy {name!r}; "
            f"choose from {SEARCH_POLICY_NAMES}"
        ) from None
