"""Move-operation chains: planning, application and the registry.

A **chain** bridges a communication conflict: a string of ``move``
operations, one per intermediate cluster along one of the topology's
candidate paths between a scheduled producer and the cluster chosen for
the consumer (paper figure 3).  Each move reads from the CQRF behind it and
writes to the CQRF ahead of it, occupying the Copy FU of its own cluster.

Planning rules (paper section 3):

* any cluster can be considered for the operation being scheduled;
* chains can be built only if *clean* (ejection-free) Copy-FU slots exist
  for every move;
* among feasible options, pick the one that "maximizes the number of free
  slots left available to schedule move operations in any cluster" —
  interpreted as maximising the bottleneck (minimum over clusters) of
  remaining Copy-FU slack — tie-broken by the smallest number of moves.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..config import SchedulerConfig
from ..errors import SchedulingError
from ..ir.ddg import DDG
from ..ir.opcodes import FUKind, OpCode
from ..ir.operations import ValueUse
from ..machine.topology import CommPath
from .schedule import PartialSchedule


@dataclass(frozen=True)
class Chain:
    """A live chain in the partial schedule."""

    chain_id: int
    producer: int
    consumer: int
    omega: int
    operand_indexes: Tuple[int, ...]
    move_ids: Tuple[int, ...]
    path: CommPath

    @property
    def n_moves(self) -> int:
        return len(self.move_ids)


@dataclass(frozen=True)
class PlannedChain:
    """One chain of a :class:`ChainPlan`, with pre-computed move slots."""

    producer: int
    omega: int
    operand_indexes: Tuple[int, ...]
    path: CommPath
    move_times: Tuple[int, ...]

    @property
    def n_moves(self) -> int:
        return len(self.move_times)


@dataclass(frozen=True)
class ChainPlan:
    """A feasible strategy-2 option: target cluster plus its chains."""

    cluster: int
    chains: Tuple[PlannedChain, ...]
    bottleneck_slack: int

    @property
    def n_moves(self) -> int:
        return sum(c.n_moves for c in self.chains)

    @property
    def sort_key(self) -> Tuple[int, int, int]:
        """Larger is better: slack, then fewer moves, then lower cluster."""
        return (self.bottleneck_slack, -self.n_moves, -self.cluster)


class ChainRegistry:
    """Tracks live chains and the operations participating in them."""

    def __init__(self) -> None:
        self._chains: Dict[int, Chain] = {}
        self._by_move: Dict[int, int] = {}
        self._by_endpoint: Dict[int, Set[int]] = {}
        self._next_id = 0

    def add(
        self,
        producer: int,
        consumer: int,
        omega: int,
        operand_indexes: Sequence[int],
        move_ids: Sequence[int],
        path: CommPath,
    ) -> Chain:
        chain = Chain(
            chain_id=self._next_id,
            producer=producer,
            consumer=consumer,
            omega=omega,
            operand_indexes=tuple(operand_indexes),
            move_ids=tuple(move_ids),
            path=path,
        )
        self._next_id += 1
        self._chains[chain.chain_id] = chain
        for move_id in chain.move_ids:
            self._by_move[move_id] = chain.chain_id
        for endpoint in (producer, consumer):
            self._by_endpoint.setdefault(endpoint, set()).add(chain.chain_id)
        return chain

    def remove(self, chain_id: int) -> Chain:
        chain = self._chains.pop(chain_id)
        for move_id in chain.move_ids:
            self._by_move.pop(move_id, None)
        for endpoint in (chain.producer, chain.consumer):
            members = self._by_endpoint.get(endpoint)
            if members is not None:
                members.discard(chain_id)
                if not members:
                    self._by_endpoint.pop(endpoint)
        return chain

    def chain_of_move(self, op_id: int) -> Optional[Chain]:
        chain_id = self._by_move.get(op_id)
        return self._chains.get(chain_id) if chain_id is not None else None

    def chains_of_endpoint(self, op_id: int) -> List[Chain]:
        return sorted(
            (self._chains[c] for c in self._by_endpoint.get(op_id, ())),
            key=lambda chain: chain.chain_id,
        )

    def membership(self, op_id: int) -> List[Chain]:
        """All chains *op_id* participates in (as move or endpoint)."""
        chains = {c.chain_id: c for c in self.chains_of_endpoint(op_id)}
        move_chain = self.chain_of_move(op_id)
        if move_chain is not None:
            chains[move_chain.chain_id] = move_chain
        return [chains[c] for c in sorted(chains)]

    @property
    def n_live(self) -> int:
        return len(self._chains)

    def live_chains(self) -> List[Chain]:
        return [self._chains[c] for c in sorted(self._chains)]


class ChainPlanner:
    """Builds :class:`ChainPlan` options for DMS strategy 2.

    Candidate paths per far predecessor come from the machine topology
    (two ring directions on the paper machine; up to ``max_paths``
    shortest routes on a mesh or torus).
    """

    def __init__(self, schedule: PartialSchedule, config: SchedulerConfig):
        self.schedule = schedule
        self.config = config
        self._scratch_id = -1
        self._move_latency = schedule.latencies.latency(OpCode.MOVE)
        # Producer latency memo (opcodes are immutable per op id).
        self._op_latency: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan(self, op_id: int) -> Optional[ChainPlan]:
        """Best feasible chain plan for *op_id*, or None."""
        schedule = self.schedule
        machine = schedule.machine
        dist = schedule.dist
        capacity = schedule.mrt.capacity
        op = schedule.ddg.op(op_id)

        succ_clusters = [
            schedule.cluster(s) for s in schedule.scheduled_flow_succs(op_id)
        ]
        pred_groups = self._scheduled_pred_groups(op_id)
        best: Optional[ChainPlan] = None
        for cluster in range(machine.n_clusters):
            if capacity(cluster, op.fu_kind) == 0:
                continue
            dist_from = dist[cluster]
            if any(dist_from[sc] > 1 for sc in succ_clusters):
                continue
            far = [
                (producer, omega, indexes, schedule.cluster(producer))
                for (producer, omega), indexes in pred_groups.items()
                if dist[schedule.cluster(producer)][cluster] > 1
            ]
            if not far:
                # Strategy 1 handles chain-free clusters; nothing to plan.
                continue
            plan = self._best_plan_for_cluster(op_id, cluster, far)
            if plan is None:
                continue
            if best is None or plan.sort_key > best.sort_key:
                best = plan
        return best

    def _scheduled_pred_groups(
        self, op_id: int
    ) -> Dict[Tuple[int, int], Tuple[int, ...]]:
        """Scheduled producers grouped by (producer, omega) -> operand idxs."""
        groups: Dict[Tuple[int, int], List[int]] = {}
        op = self.schedule.ddg.op(op_id)
        for index, src in enumerate(op.srcs):
            if src.is_external or src.producer == op_id:
                continue
            if not self.schedule.is_scheduled(src.producer):
                continue
            groups.setdefault((src.producer, src.omega), []).append(index)
        return {key: tuple(indexes) for key, indexes in sorted(groups.items())}

    def _best_plan_for_cluster(
        self,
        op_id: int,
        cluster: int,
        far: List[Tuple[int, int, Tuple[int, ...], int]],
    ) -> Optional[ChainPlan]:
        topology = self.schedule.machine.topology
        options_per_pred: List[List[Tuple[int, int, Tuple[int, ...], CommPath]]] = []
        for producer, omega, indexes, pred_cluster in far:
            paths = topology.paths_cached(pred_cluster, cluster)
            if self.config.prefer_shortest_chain_only:
                paths = paths[:1]
            options_per_pred.append(
                [(producer, omega, indexes, path) for path in paths]
            )
        best: Optional[ChainPlan] = None
        combos = itertools.islice(
            itertools.product(*options_per_pred), self.config.chain_combo_cap
        )
        for combo in combos:
            plan = self._try_combo(cluster, combo)
            if plan is None:
                continue
            if best is None or plan.sort_key > best.sort_key:
                best = plan
        return best

    def _try_combo(
        self,
        cluster: int,
        combo: Tuple[Tuple[int, int, Tuple[int, ...], CommPath], ...],
    ) -> Optional[ChainPlan]:
        """Tentatively place every move of *combo*; score then roll back."""
        schedule = self.schedule
        mrt = schedule.mrt
        ii = schedule.ii
        move_latency = self._move_latency
        occupied: List[Tuple[int, int, int]] = []  # (scratch_id, cluster, time)
        planned: List[PlannedChain] = []
        feasible = True
        touched: Set[int] = set()
        for producer, omega, indexes, path in combo:
            producer_latency = self._op_latency.get(producer)
            if producer_latency is None:
                producer_latency = schedule.latencies.latency(
                    schedule.ddg.op(producer).opcode
                )
                self._op_latency[producer] = producer_latency
            ready = schedule.time(producer) + producer_latency - ii * omega
            move_times: List[int] = []
            for hop_cluster in path.intermediates:
                estart = max(0, ready)
                slot = self._find_clean_copy_slot(hop_cluster, estart)
                if slot is None:
                    feasible = False
                    break
                scratch = self._scratch_id
                self._scratch_id -= 1
                mrt.place(scratch, hop_cluster, FUKind.COPY, slot)
                occupied.append((scratch, hop_cluster, slot))
                touched.add(hop_cluster)
                move_times.append(slot)
                ready = slot + move_latency
            if not feasible:
                break
            planned.append(
                PlannedChain(producer, omega, indexes, path, tuple(move_times))
            )
        plan: Optional[ChainPlan] = None
        if feasible:
            if self.config.chain_score_all_clusters:
                scored_clusters = range(schedule.machine.n_clusters)
            else:
                scored_clusters = sorted(touched) or [cluster]
            slack = min(
                schedule.free_slots(c, FUKind.COPY) for c in scored_clusters
            )
            plan = ChainPlan(cluster, tuple(planned), slack)
        for scratch, hop_cluster, slot in occupied:
            mrt.remove(scratch, hop_cluster, FUKind.COPY, slot)
        return plan

    def _find_clean_copy_slot(self, cluster: int, estart: int) -> Optional[int]:
        """First free Copy-FU slot in ``[estart, estart + II - 1]``."""
        return self.schedule.mrt.first_free_slot(cluster, FUKind.COPY, estart)

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    def apply(
        self, op_id: int, plan: ChainPlan, registry: ChainRegistry
    ) -> List[Chain]:
        """Materialise *plan*: create moves in the DDG, schedule them,
        rewire the consumer's operands and register the chains.

        The MRT state must be unchanged since :meth:`plan` returned, so the
        recorded move slots are still free.
        """
        schedule = self.schedule
        ddg = schedule.ddg
        chains: List[Chain] = []
        for planned in plan.chains:
            previous = ValueUse(planned.producer, planned.omega)
            move_ids: List[int] = []
            for hop_cluster, slot in zip(
                planned.path.intermediates, planned.move_times
            ):
                move = ddg.new_operation(
                    OpCode.MOVE,
                    (previous,),
                    tag=f"mv(v{planned.producer}->v{op_id})",
                )
                schedule.place(move.op_id, slot, hop_cluster)
                previous = ValueUse(move.op_id, 0)
                move_ids.append(move.op_id)
            if not move_ids:
                raise SchedulingError("chain plan without moves")
            for index in planned.operand_indexes:
                ddg.replace_operand(op_id, index, previous)
            chains.append(
                registry.add(
                    producer=planned.producer,
                    consumer=op_id,
                    omega=planned.omega,
                    operand_indexes=planned.operand_indexes,
                    move_ids=move_ids,
                    path=planned.path,
                )
            )
        return chains


def dismantle_chain(
    chain: Chain,
    schedule: PartialSchedule,
    registry: ChainRegistry,
) -> None:
    """Remove *chain* from the schedule and the DDG, restoring the direct
    producer -> consumer operand references.

    The caller decides what happens to the endpoints; this helper only
    guarantees the graph is back to its pre-chain shape.
    """
    ddg = schedule.ddg
    registry.remove(chain.chain_id)
    # Restore the consumer's operands to the original producer reference.
    restored = ValueUse(chain.producer, chain.omega)
    for index in chain.operand_indexes:
        ddg.replace_operand(chain.consumer, index, restored)
    # Remove moves consumer-side first so no flow references remain.
    for move_id in reversed(chain.move_ids):
        if schedule.is_scheduled(move_id):
            schedule.remove(move_id)
        ddg.remove_operation(move_id)
