"""Distributed Modulo Scheduling (DMS) — the paper's core contribution.

DMS integrates cluster assignment into iterative modulo scheduling.  Every
operation is scheduled by the first applicable of three strategies
(paper figure 2):

1. **Strategy 1** — find a slot in a *communication-compatible* cluster
   (topology distance <= 1 to every scheduled flow predecessor and
   successor).
   A clean resource-free slot in the II window is preferred; otherwise a
   forced placement ejects the occupants of one MRT cell.  Ejections here
   are only for resource conflicts and dependence conflicts with
   successors — never communication conflicts.
2. **Strategy 2** — when no compatible cluster exists, bridge the far
   predecessors with **chains of move operations** through intermediate
   clusters (one option per topology path, e.g. the two ring
   directions).  Chains need clean
   Copy-FU slots; the chosen option maximises the bottleneck Copy-FU
   slack, tie-broken by fewest moves.  The DDG is updated with the new
   moves, which are scheduled immediately, producer-side first.
3. **Strategy 3** — when chains are impossible too, place the operation in
   an arbitrarily chosen cluster IMS-style and additionally eject the
   communication-conflicting partners.

Backtracking is chain-aware: ejecting a chain's producer, any of its
moves, or its consumer dismantles the chain (moves leave the schedule
*and* the DDG, the original operand reference is restored); if a move is
ejected while both endpoints remain scheduled on indirectly connected
clusters, the consumer is ejected as well.  The partial schedule therefore
never contains a communication conflict — an invariant the checker and the
property tests enforce.

The outer II/restart walk lives in :mod:`repro.scheduling.search`; this
module contributes :class:`DMSAttemptRunner` (one attempt = one salt at
one II on a pristine graph copy) and the per-attempt machinery.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from ..config import DEFAULT_CONFIG, SchedulerConfig
from ..errors import SchedulingError
from ..ir.ddg import DDG
from ..ir.opcodes import DEFAULT_LATENCIES, FUKind, LatencyModel
from ..machine.machine import MachineSpec
from .chains import ChainPlanner, ChainRegistry, dismantle_chain
from .heights import compute_heights
from .mii import compute_mii
from .result import ScheduleResult, SchedulerStats
from .schedule import PartialSchedule
from .search import (
    _HOT_POP_THRESHOLD,
    AttemptLimits,
    AttemptOutcome,
    AttemptRunner,
    FailureEvidence,
    get_search_policy,
)

#: Maximum operand references per value DMS accepts on clustered machines.
_MAX_CLUSTERED_FANOUT = 2


class DistributedModuloScheduler:
    """DMS for clustered VLIW machines with any registered topology."""

    name = "dms"

    def __init__(
        self,
        machine: MachineSpec,
        latencies: LatencyModel = DEFAULT_LATENCIES,
        config: SchedulerConfig = DEFAULT_CONFIG,
    ):
        self.machine = machine
        self.latencies = latencies
        self.config = config

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def schedule(self, ddg: DDG) -> ScheduleResult:
        """Find the smallest feasible II for *ddg* and schedule it.

        The II/restart walk itself is delegated to the search policy
        named by ``config.search`` (see :mod:`repro.scheduling.search`);
        this method owns only the per-loop invariants and the result
        assembly.
        """
        if len(ddg) == 0:
            raise SchedulingError(f"loop {ddg.name!r} has no operations")
        self._check_fanout(ddg)
        bounds = compute_mii(ddg, self.machine, self.latencies)
        policy = get_search_policy(self.config.search)
        outcome = policy.search(self.attempt_runner(ddg), bounds.mii, self.config)
        return ScheduleResult(
            loop_name=ddg.name,
            machine=self.machine,
            scheduler=self.name,
            ii=outcome.ii,
            res_mii=bounds.res_mii,
            rec_mii=bounds.rec_mii,
            ddg=outcome.work,
            placements=outcome.placements,
            latencies=self.latencies,
            stats=outcome.stats,
            ii_trajectory=outcome.trajectory,
        )

    def attempt_runner(self, ddg: DDG) -> "DMSAttemptRunner":
        """The per-loop attempt server the search policies drive."""
        return DMSAttemptRunner(self, ddg)

    def _check_fanout(self, ddg: DDG) -> None:
        if not self.machine.is_clustered:
            return
        for op_id in ddg.op_ids:
            fanout = ddg.flow_fanout(op_id)
            if fanout > _MAX_CLUSTERED_FANOUT:
                raise SchedulingError(
                    f"loop {ddg.name!r}: op {op_id} has fan-out {fanout}; "
                    "apply the single-use transform before DMS "
                    "(repro.ir.transforms.single_use_ddg)"
                )


class DMSAttemptRunner(AttemptRunner):
    """Serves DMS attempts to a search policy for one loop (the shared
    height caches live on :class:`AttemptRunner`)."""

    def __init__(self, scheduler: DistributedModuloScheduler, ddg: DDG):
        self.scheduler = scheduler
        self.restarts_per_rung = scheduler.config.restarts_per_ii
        self._can_mutate = scheduler.machine.is_clustered
        self._bind(ddg, scheduler.latencies)

    def run(
        self,
        ii: int,
        salt: int,
        limits: Optional[AttemptLimits] = None,
        evidence: Optional[FailureEvidence] = None,
    ) -> AttemptOutcome:
        # Each attempt works on a pristine copy: chains from failed
        # attempts must not leak into the next one.  An unclustered
        # machine never builds chains, so the graph cannot mutate and
        # the copy is skipped.  The salt rotates the cluster preference
        # so restarts explore different greedy assignments (see
        # SchedulerConfig).
        work = self.ddg.copy() if self._can_mutate else self.ddg
        stats = SchedulerStats()
        attempt = _Attempt(
            self.scheduler,
            work,
            ii,
            stats,
            salt,
            self.heights_for(ii),
            limits=limits,
            evidence=evidence,
        )
        schedule = attempt.run()
        return AttemptOutcome(
            ii=ii,
            salt=salt,
            placements=schedule.placements() if schedule is not None else None,
            work=work,
            stats=stats,
            evidence=attempt.failure_evidence() if schedule is None else None,
        )

    def portfolio_payload(self) -> tuple:
        scheduler = self.scheduler
        return (
            "dms",
            scheduler.machine,
            scheduler.latencies,
            scheduler.config,
            self.ddg,
        )


class _Attempt:
    """State of one II attempt (schedule, chains, budget)."""

    def __init__(
        self,
        scheduler: DistributedModuloScheduler,
        work: DDG,
        ii: int,
        stats: SchedulerStats,
        salt: int = 0,
        heights: Optional[Dict[int, int]] = None,
        limits: Optional[AttemptLimits] = None,
        evidence: Optional[FailureEvidence] = None,
    ):
        self.machine = scheduler.machine
        self.latencies = scheduler.latencies
        self.config = scheduler.config
        self.work = work
        self.ii = ii
        self.stats = stats
        self.salt = salt
        self.limits = limits
        self.evidence = evidence
        # Pop counts feed both the thrash cutoff and failure evidence;
        # neither exists on the reference (limits=None) path, which must
        # stay byte-for-byte the seed algorithm.
        self.pop_counts: Optional[Dict[int, int]] = (
            {} if limits is not None else None
        )
        self._evidence_rank: Optional[Dict[int, int]] = (
            {c: i for i, c in enumerate(evidence.cluster_order)}
            if evidence is not None
            else None
        )
        self.schedule = PartialSchedule(work, self.machine, ii, self.latencies)
        self.registry = ChainRegistry()
        self.planner = ChainPlanner(self.schedule, self.config)
        self.unscheduled: Set[int] = set(work.op_ids)
        self.last_time: Dict[int, int] = {}
        self.force_counts: Dict[int, int] = {}
        self.heights = (
            heights
            if heights is not None
            else compute_heights(work, self.latencies, ii)
        )
        # Height-ordered ready queue with lazy deletion: pop_ready()
        # yields exactly min(unscheduled, key=(-height, id)) without the
        # O(n) scan per placement.  Ejected ops are pushed again; stale
        # heap entries (op already popped or still scheduled) are skipped.
        self._ready = [(-self.heights[op_id], op_id) for op_id in work.op_ids]
        heapq.heapify(self._ready)

    # ------------------------------------------------------------------

    def _pop_ready(self) -> int:
        """Highest-height unscheduled op (ties by lowest id)."""
        ready = self._ready
        unscheduled = self.unscheduled
        while ready:
            op_id = heapq.heappop(ready)[1]
            if op_id in unscheduled:
                return op_id
        raise SchedulingError("ready queue exhausted with unscheduled ops")

    def _mark_unscheduled(self, op_id: int) -> None:
        """Return an ejected op to the ready queue."""
        self.unscheduled.add(op_id)
        heapq.heappush(self._ready, (-self.heights[op_id], op_id))

    def run(self) -> Optional[PartialSchedule]:
        budget = self.config.budget_ratio * len(self.work)
        limits = self.limits
        if limits is None:
            # Reference path (ladder/portfolio): the seed loop, verbatim.
            while self.unscheduled and budget > 0:
                budget -= 1
                self.stats.budget_used += 1
                op_id = self._pop_ready()
                self.unscheduled.remove(op_id)
                self._schedule_op(op_id)
            if self.unscheduled:
                return None
            return self.schedule
        thrash_cap = limits.thrash_cap
        pop_counts = self.pop_counts
        while self.unscheduled and budget > 0:
            if limits.budget_infeasible_abort and budget < len(self.unscheduled):
                # Each placement costs one budget unit and schedules one
                # op: finishing is already impossible (outcome-exact).
                self.stats.futility_aborts += 1
                return None
            op_id = self._pop_ready()
            count = pop_counts.get(op_id, 0) + 1
            pop_counts[op_id] = count
            if thrash_cap is not None and count - 1 > thrash_cap:
                # Livelock: one op is being ejected over and over.  The
                # op stays in the unscheduled set so the evidence report
                # sees it (heuristic cutoff — see AttemptLimits).
                self.stats.futility_aborts += 1
                return None
            budget -= 1
            self.stats.budget_used += 1
            self.unscheduled.remove(op_id)
            self._schedule_op(op_id)
        if self.unscheduled:
            return None
        return self.schedule

    def failure_evidence(self) -> FailureEvidence:
        """What this (failed) attempt learned, for the next probe."""
        hot = set(self.unscheduled)
        if self.pop_counts is not None:
            hot.update(
                op_id
                for op_id, count in self.pop_counts.items()
                if count - 1 >= _HOT_POP_THRESHOLD
            )
        load = [0] * self.machine.n_clusters
        for placement in self.schedule.placements().values():
            load[placement.cluster] += 1
        cluster_order = tuple(
            sorted(range(self.machine.n_clusters), key=lambda c: (load[c], c))
        )
        return FailureEvidence(
            hot_ops=frozenset(hot), cluster_order=cluster_order
        )

    def _schedule_op(self, op_id: int) -> None:
        estart = max(0, self.schedule.earliest_start(op_id))
        kind = self.work.op(op_id).fu_kind
        with_kind = self.schedule.clusters_with(kind)
        compatible = [
            cluster
            for cluster in self.schedule.comm_compatible_clusters(op_id)
            if cluster in with_kind
        ]
        if compatible:
            self.stats.strategy1 += 1
            time, cluster = self._place_in_clusters(op_id, estart, compatible)
        else:
            plan = self.planner.plan(op_id)
            if plan is not None:
                self.stats.strategy2 += 1
                self.stats.chains_built += len(plan.chains)
                self.stats.moves_inserted += plan.n_moves
                self.planner.apply(op_id, plan, self.registry)
                # The moves are now scheduled predecessors of op_id.
                estart = max(0, self.schedule.earliest_start(op_id))
                time, cluster = self._place_in_clusters(
                    op_id, estart, [plan.cluster]
                )
            else:
                self.stats.strategy3 += 1
                time, cluster = self._place_strategy3(op_id, estart, kind)
        for victim in self.schedule.succ_violations(op_id, time):
            self._eject(victim, "dependence")
        self.schedule.place(op_id, time, cluster)
        self.last_time[op_id] = time
        self.stats.placements += 1

    # ------------------------------------------------------------------
    # Placement helpers
    # ------------------------------------------------------------------

    def _place_in_clusters(
        self, op_id: int, estart: int, clusters: List[int]
    ) -> Tuple[int, int]:
        """IMS-style placement restricted to *clusters* (strategies 1-2).

        The clean-slot scan is time-major over the preference order; one
        windowed lane scan per cluster plus a min() reproduces the
        original nested loop without per-(time, cluster) MRT probes.
        """
        kind = self.work.op(op_id).fu_kind
        ordered = self._cluster_preference(op_id, kind, clusters)
        first_free = self.schedule.mrt.first_free_slot
        best: Optional[Tuple[int, int]] = None  # (time, preference index)
        for index, cluster in enumerate(ordered):
            time = first_free(cluster, kind, estart)
            if time == estart:
                # A free slot at estart on the most-preferred cluster so
                # far cannot be beaten by any later preference.
                return (estart, cluster)
            if time is not None and (best is None or (time, index) < best):
                best = (time, index)
        if best is not None:
            return (best[0], ordered[best[1]])
        return self._force_in_clusters(op_id, estart, ordered, kind)

    def _cluster_preference(
        self, op_id: int, kind: FUKind, clusters: List[int]
    ) -> List[int]:
        """Order candidate clusters for the clean-slot scan.

        Operations with scheduled flow partners stay close to them (chains
        of dependent work settle on neighbouring clusters, using the
        near-neighbour CQRFs the machine gives away for free); independent
        operations are spread over the clusters by a deterministic
        rotation so parallel dependence chains claim different regions
        instead of piling onto cluster 0.
        """
        if len(clusters) <= 1:
            return list(clusters)
        dist = self.schedule.dist
        partner_clusters = self.schedule.scheduled_partner_clusters(op_id)
        if partner_clusters:
            free_slots = self.schedule.mrt.free_slots
            keyed = []
            for c in clusters:
                dist_from = dist[c]
                total = 0
                for pc in partner_clusters:
                    total += dist_from[pc]
                keyed.append((total, -free_slots(c, kind), c))
            keyed.sort()
            return [key[2] for key in keyed]
        # Spread partner-free operations proportionally to their position
        # in the graph: parallel dependence chains (whose members have
        # nearby ids) claim evenly spaced cluster regions, leaving each
        # region's units for the chain that starts there.
        n = self.machine.n_clusters
        rotation = (op_id * n) // max(1, len(self.work)) + self.salt
        rank = self._evidence_rank
        if rank is not None and op_id in self.evidence.hot_ops:
            # Evidence seeding: an op that thrashed in the previous
            # failed attempt starts its scan from the clusters that
            # attempt left least loaded, the salt rotation breaking ties
            # so successive probes still diversify.
            return sorted(
                clusters, key=lambda c: (rank.get(c, n), (c - rotation) % n)
            )
        return sorted(clusters, key=lambda c: (c - rotation) % n)

    def _force_in_clusters(
        self, op_id: int, estart: int, clusters: List[int], kind: FUKind
    ) -> Tuple[int, int]:
        """Forced placement: evict the cheapest MRT cell among *clusters*."""
        if op_id in self.last_time:
            time = max(estart, self.last_time[op_id] + 1)
        else:
            time = estart
        # Rotate the eviction target across retries: Rau's `prev + 1` time
        # bump makes progress in *time*, but at small IIs (one or two MRT
        # rows) cluster assignment is the real search space, so a repeated
        # forced placement must not keep evicting the same cell.
        retries = self.force_counts.get(op_id, 0)
        self.force_counts[op_id] = retries + 1
        ranked = sorted(
            clusters,
            key=lambda c: (len(self.schedule.mrt.occupants(c, kind, time)), c),
        )
        best_cluster = ranked[retries % len(ranked)]
        for victim in self.schedule.mrt.occupants(best_cluster, kind, time):
            self._eject(victim, "resource")
        return (time, best_cluster)

    def _place_strategy3(
        self, op_id: int, estart: int, kind: FUKind
    ) -> Tuple[int, int]:
        """Arbitrary-cluster placement with communication ejections."""
        capacity = self.schedule.mrt.capacity
        candidates = [
            c
            for c in range(self.machine.n_clusters)
            if capacity(c, kind) > 0
        ]
        if not candidates:
            raise SchedulingError(
                f"machine {self.machine.name!r} has no {kind.value} unit"
            )
        cluster = max(
            candidates, key=lambda c: (self.schedule.free_slots(c, kind), -c)
        )
        # Communication conflicts do not depend on the slot; eject them now.
        for victim in self.schedule.comm_conflicts(op_id, cluster):
            self._eject(victim, "communication")
        # IMS-like slot search within the chosen cluster.
        time = self.schedule.mrt.first_free_slot(cluster, kind, estart)
        if time is not None:
            return (time, cluster)
        if op_id in self.last_time:
            time = max(estart, self.last_time[op_id] + 1)
        else:
            time = estart
        for victim in self.schedule.mrt.occupants(cluster, kind, time):
            self._eject(victim, "resource")
        return (time, cluster)

    # ------------------------------------------------------------------
    # Chain-aware backtracking
    # ------------------------------------------------------------------

    def _eject(self, op_id: int, cause: str) -> None:
        """Unschedule *op_id*, handling chain membership (paper section 3).

        Distinct actions by role: a *move* dismantles its chain (and the
        consumer follows when the endpoints are left in conflict); an
        *endpoint* (original producer or consumer) dismantles every chain
        it participates in and returns to the unscheduled set.
        """
        if op_id not in self.work:
            # A move already removed by an earlier dismantle this round.
            return
        chain = self.registry.chain_of_move(op_id)
        if chain is not None:
            self._dismantle(chain)
            producer, consumer = chain.producer, chain.consumer
            if self.schedule.is_scheduled(producer) and self.schedule.is_scheduled(
                consumer
            ):
                distance = self.schedule.dist[self.schedule.cluster(producer)][
                    self.schedule.cluster(consumer)
                ]
                if distance > 1:
                    # Keep the partial schedule free of communication
                    # conflicts: the consumer is rescheduled later.
                    self._eject(consumer, "chain")
            return
        if self.schedule.is_scheduled(op_id):
            self.schedule.remove(op_id)
            self._mark_unscheduled(op_id)
            self._count(cause)
        for endpoint_chain in self.registry.chains_of_endpoint(op_id):
            self._dismantle(endpoint_chain)

    def _dismantle(self, chain) -> None:
        dismantle_chain(chain, self.schedule, self.registry)
        self.stats.chains_dismantled += 1
        self.stats.moves_removed += chain.n_moves

    def _count(self, cause: str) -> None:
        if cause == "resource":
            self.stats.ejections_resource += 1
        elif cause == "dependence":
            self.stats.ejections_dependence += 1
        elif cause == "communication":
            self.stats.ejections_communication += 1
        else:
            self.stats.ejections_chain += 1
