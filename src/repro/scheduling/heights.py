"""Height-based scheduling priority (Rau's HeightR).

``height(p) = max over successors q of height(q) + latency(p,q) - II*omega``
with ``height = 0`` for operations without successors.  Heights are the
longest II-adjusted path to a sink; operations are scheduled
highest-height first, which favours critical recurrence circuits.

The graph may be cyclic; with ``II >= RecMII`` no circuit has positive
weight, so the fixpoint iteration below converges within ``|V|`` sweeps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import SchedulingError
from ..ir.ddg import DDG
from ..ir.opcodes import LatencyModel

#: (src, dst, latency, omega) per edge — the II-independent part of the
#: height recurrence, shareable across II attempts of one graph.
EdgeTerms = List[Tuple[int, int, int, int]]


def height_edge_terms(ddg: DDG, latencies: LatencyModel) -> EdgeTerms:
    """Precompute the per-edge constants :func:`compute_heights` needs."""
    return [
        (e.src, e.dst, ddg.edge_latency(e, latencies), e.omega)
        for e in ddg.edges()
    ]


def compute_heights(
    ddg: DDG,
    latencies: LatencyModel,
    ii: int,
    terms: Optional[EdgeTerms] = None,
) -> Dict[int, int]:
    """Height of every operation for priority ordering at the given II.

    *terms* (from :func:`height_edge_terms`) lets callers that probe
    several II values skip re-walking the graph per attempt.
    """
    if ii < 1:
        raise SchedulingError(f"ii must be >= 1, got {ii}")
    heights: Dict[int, int] = {op_id: 0 for op_id in ddg.op_ids}
    if terms is None:
        terms = height_edge_terms(ddg, latencies)
    edges = [(src, dst, lat - ii * omega) for src, dst, lat, omega in terms]
    for _ in range(len(heights) + 1):
        changed = False
        for src, dst, weight in edges:
            candidate = heights[dst] + weight
            if candidate > heights[src]:
                heights[src] = candidate
                changed = True
        if not changed:
            return heights
    raise SchedulingError(
        f"height computation for {ddg.name!r} did not converge at II={ii}; "
        "II is below RecMII"
    )


def priority_order(heights: Dict[int, int]) -> list:
    """Operation ids sorted by decreasing height, ties by ascending id."""
    return sorted(heights, key=lambda op_id: (-heights[op_id], op_id))
