"""FIG5 — "Execution time" (paper figure 5).

Regenerates the relative total-cycle curves (normalised to 100 at the
3-FU unclustered machine) for set 1 (all loops) and set 2
(recurrence-free), clustered vs unclustered, and asserts the anchors:

* unclustered curves decrease monotonically with machine width;
* the clustered machine never beats its unclustered twin (its problem is
  strictly more constrained);
* set 1: clustered tracks unclustered closely up to 21 FUs;
* set 2: clustered stays close across the whole range (the paper's
  "very small differences ... if only loops without recurrences are
  considered").
"""

from repro.experiments import figure5

from .conftest import render

_FUS = [float(f) for f in range(3, 31, 3)]


def test_fig5_execution_time(benchmark, paper_sweep):
    figure = benchmark.pedantic(
        lambda: figure5(paper_sweep), rounds=1, iterations=1
    )
    render(figure)

    for set_label in ("set1", "set2"):
        unclustered = figure.series[f"{set_label}_unclustered"]
        clustered = figure.series[f"{set_label}_clustered"]

        # Normalisation: both start at 100 (1 cluster == unclustered).
        assert unclustered[0] == 100.0
        assert clustered[0] == 100.0

        # Unclustered is monotone non-increasing in machine width.
        assert all(
            a >= b - 1e-9 for a, b in zip(unclustered, unclustered[1:])
        )

        # Partitioning costs cycles on aggregate.  (A hair of slack: DMS
        # runs diversified restarts that IMS does not, so it occasionally
        # lands a smaller stage count or a packing IMS's single greedy
        # pass missed.)
        for u_val, c_val in zip(unclustered, clustered):
            assert c_val >= 0.99 * u_val

    # Set 1 anchor: close tracking up to 21 FUs (within 10%).
    for fus in (3.0, 6.0, 9.0, 12.0, 15.0, 18.0, 21.0):
        u_val = figure.series_value("set1_unclustered", fus)
        c_val = figure.series_value("set1_clustered", fus)
        assert c_val <= 1.10 * u_val

    # Set 2 anchor: close tracking through 21 FUs (within 10%), looser at
    # the widest machines where the sampled suite is noisy (the full
    # 1258-loop run measures a 14.8% worst gap — EXPERIMENTS.md).
    for fus in _FUS:
        u_val = figure.series_value("set2_unclustered", fus)
        c_val = figure.series_value("set2_clustered", fus)
        tolerance = 1.10 if fus <= 21.0 else 1.30
        assert c_val <= tolerance * u_val


def test_fig5_set2_scales_better_than_set1(paper_sweep):
    """Vectorizable loops convert width into speedup far better."""
    figure = figure5(paper_sweep)
    set1_at_30 = figure.series_value("set1_clustered", 30.0)
    set2_at_30 = figure.series_value("set2_clustered", 30.0)
    assert set2_at_30 < set1_at_30
