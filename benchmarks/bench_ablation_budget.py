"""ABL-BUDGET — sensitivity to Rau's budget ratio and DMS restarts.

Two scheduling-effort knobs:

* ``budget_ratio`` (Rau's IMS budget, default 6) bounds placements per
  operation within one II attempt;
* ``restarts_per_ii`` (DMS) retries a failed II with a rotated greedy
  order before giving up.

More effort must never produce *worse* aggregate II, and the defaults
should already capture nearly all of the quality.
"""

import pytest

from repro.config import SchedulerConfig
from repro.experiments import SweepConfig, run_sweep

RINGS = (8,)


def total_dms_ii(runs):
    return sum(r.ii for r in runs if r.scheduler == "dms")


@pytest.fixture(scope="module")
def default_runs(suite_loops):
    return run_sweep(suite_loops, SweepConfig(cluster_counts=RINGS))


def test_budget_sensitivity(benchmark, suite_loops, default_runs):
    def sweep_lean():
        return run_sweep(
            suite_loops,
            SweepConfig(
                cluster_counts=RINGS,
                scheduler_config=SchedulerConfig(budget_ratio=2),
            ),
        )

    lean_runs = benchmark.pedantic(sweep_lean, rounds=1, iterations=1)
    default_ii = total_dms_ii(default_runs)
    lean_ii = total_dms_ii(lean_runs)
    print()
    print(f"aggregate DMS II at 8 clusters   budget 6: {default_ii}   budget 2: {lean_ii}")
    # A larger budget may only help.
    assert default_ii <= lean_ii


def test_restart_sensitivity(suite_loops, default_runs):
    single_pass = run_sweep(
        suite_loops,
        SweepConfig(
            cluster_counts=RINGS,
            scheduler_config=SchedulerConfig(restarts_per_ii=1),
        ),
    )
    default_ii = total_dms_ii(default_runs)
    single_ii = total_dms_ii(single_pass)
    print()
    print(
        f"aggregate DMS II at 8 clusters   restarts 3: {default_ii}   "
        f"restarts 1: {single_ii}"
    )
    assert default_ii <= single_ii
