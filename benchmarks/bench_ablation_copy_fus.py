"""ABL-COPYFU — extra Copy FUs shrink the wide-ring overhead.

The paper's conclusion: "A larger overhead was observed for wider-issue
machines, although that could be minimized by using additional FUs to
schedule move operations."  We rerun the wide-ring part of figure 4 with
2 Copy FUs per cluster and check the overhead does not grow — the move
bottleneck is the binding constraint the paper identified.
"""

import pytest

from repro.experiments import SweepConfig, ii_overhead_fraction, run_sweep
from repro.machine import ClusterSpec

WIDE_RINGS = (6, 8, 10)


@pytest.fixture(scope="module")
def one_copy_runs(suite_loops):
    spec = ClusterSpec(copy=1)
    return run_sweep(
        suite_loops, SweepConfig(cluster_counts=WIDE_RINGS, cluster_spec=spec)
    )


def test_extra_copy_fus_reduce_overhead(benchmark, suite_loops, one_copy_runs):
    def sweep_two_copy():
        spec = ClusterSpec(copy=2)
        return run_sweep(
            suite_loops,
            SweepConfig(cluster_counts=WIDE_RINGS, cluster_spec=spec),
        )

    two_copy_runs = benchmark.pedantic(sweep_two_copy, rounds=1, iterations=1)

    print()
    print(f"{'clusters':>8} {'1 copy FU %':>12} {'2 copy FUs %':>13}")
    total_one = 0.0
    total_two = 0.0
    for k in WIDE_RINGS:
        one = 100.0 * ii_overhead_fraction(one_copy_runs, k)
        two = 100.0 * ii_overhead_fraction(two_copy_runs, k)
        total_one += one
        total_two += two
        print(f"{k:>8} {one:>12.2f} {two:>13.2f}")

    # The second Copy FU must not make the wide-ring overhead worse, and
    # in aggregate it should help (the paper's remedy).
    assert total_two <= total_one + 1e-9


def test_extra_copy_fus_preserve_useful_fu_count(suite_loops, one_copy_runs):
    """Copy FUs are excluded from the paper's FU totals: the x axis of
    figures 5/6 must not shift."""
    for run in one_copy_runs:
        assert run.useful_fus == 3 * run.clusters
