"""FIG4 — "Overhead on II due to partitioning" (paper figure 4).

Regenerates the fraction of loops whose DMS II exceeds the unclustered
IMS II for 1-10 clusters, and asserts the paper's shape anchors:

* ~0% at one cluster (DMS degenerates to IMS);
* at 2-3 clusters any overhead comes only from copy insertion — the ring
  is fully connected, so no move chains exist at all;
* over 80% of loops are overhead-free up to 8 clusters;
* overhead grows for the widest machines.
"""

from repro.experiments import figure4, ii_overhead_fraction

from .conftest import render


def test_fig4_ii_overhead(benchmark, paper_sweep):
    figure = benchmark.pedantic(
        lambda: figure4(paper_sweep), rounds=1, iterations=1
    )
    render(figure)

    # Anchor 1: one cluster never differs from the unclustered machine.
    assert figure.series_value("ii_increase_pct", 1.0) == 0.0

    # Anchor 2: >80% of loops overhead-free up to 8 clusters.
    for k in range(2, 9):
        assert figure.series_value("ii_increase_pct", float(k)) <= 20.0

    # Anchor 3: wide machines show more overhead than narrow ones.
    narrow = max(
        figure.series_value("ii_increase_pct", float(k)) for k in (2, 3, 4)
    )
    wide = max(
        figure.series_value("ii_increase_pct", float(k)) for k in (8, 9, 10)
    )
    assert wide >= narrow


def test_fig4_small_rings_use_no_chains(benchmark, paper_sweep):
    """At 2-3 clusters every pair is directly connected: the paper notes
    overhead there is "only due to the introduction of copy operations"."""

    def moves_on_small_rings():
        return [
            run
            for run in paper_sweep
            if run.scheduler == "dms" and run.clusters in (2, 3)
        ]

    runs = benchmark.pedantic(moves_on_small_rings, rounds=1, iterations=1)
    assert runs
    assert all(run.n_moves == 0 for run in runs)
    # ... and overhead, where present, coincides with copy insertion.
    overhead = [run for run in runs if run.ii > run.mii]
    for run in overhead:
        assert run.n_copies >= 0  # copies are the only new ops


def test_fig4_overhead_fraction_monotonic_envelope(paper_sweep):
    """The cumulative-maximum envelope of the overhead curve rises."""
    values = [
        100.0 * ii_overhead_fraction(paper_sweep, k) for k in range(1, 11)
    ]
    envelope = [max(values[: i + 1]) for i in range(len(values))]
    assert envelope == sorted(envelope)
