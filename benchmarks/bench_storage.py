"""Supplementary — storage requirements (the paper's section-1 premise).

"The scalability of VLIW architectures is still constrained by the size
and number of ports of the register file required by a large number of
functional units."  We measure MaxLive on the unclustered machines (the
central RF each would need) against the largest queue file any cluster
of the DMS-scheduled machine owns, across the width sweep.
"""

from repro.experiments import storage_report, storage_sweep

from .conftest import BENCH_LOOPS, BENCH_SEED, render
from repro.workloads import perfect_club_surrogate

CLUSTERS = (1, 2, 4, 6, 8, 10)


def test_storage_requirements(benchmark):
    loops = perfect_club_surrogate(max(8, BENCH_LOOPS // 4), seed=BENCH_SEED)

    def sweep():
        return storage_sweep(loops, cluster_counts=CLUSTERS)

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    figure = storage_report(points)
    render(figure)

    maxlive = figure.series["central_rf_maxlive"]
    largest_file = figure.series["largest_cluster_file"]

    # The central register file's pressure grows with machine width...
    assert maxlive[-1] > maxlive[0]
    # ... while the largest structure any cluster owns stays bounded and,
    # at the widest machines, far below the central file's demand.
    assert largest_file[-1] < maxlive[-1]
    growth = largest_file[-1] / max(1.0, largest_file[0])
    assert growth < 2.0
