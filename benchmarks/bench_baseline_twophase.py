"""BASE-2P — single-phase DMS vs the two-phase related-work baseline.

The paper's central design claim is that integrating partitioning into
the scheduler beats doing them in sequence ("a two-phase approach to
partitioning and modulo scheduling ... The idea is to partition prior to
scheduling", section 2).  This bench schedules the suite both ways and
asserts DMS produces (weakly) fewer II-overhead loops at every ring
width — the measured form of the integration argument.
"""

from repro.experiments import two_phase_comparison
from repro.workloads import perfect_club_surrogate

from .conftest import BENCH_LOOPS, BENCH_SEED, render

CLUSTERS = (4, 6, 8)


def test_dms_beats_two_phase(benchmark):
    loops = perfect_club_surrogate(max(12, BENCH_LOOPS // 3), seed=BENCH_SEED)

    def compare():
        return two_phase_comparison(loops, cluster_counts=CLUSTERS)

    figure = benchmark.pedantic(compare, rounds=1, iterations=1)
    render(figure)

    for k in CLUSTERS:
        dms = figure.series_value("dms_single_phase", float(k))
        twophase = figure.series_value("two_phase", float(k))
        assert dms <= twophase + 1e-9

    # And the margin should be substantial in aggregate: integration is
    # the point of the paper, not a tie-break.
    dms_total = sum(figure.series["dms_single_phase"])
    twophase_total = sum(figure.series["two_phase"])
    assert dms_total < twophase_total
