"""TXT-BT — the paper's backtracking-frequency claim (section 3).

"Those results suggest that on average the backtracking frequency of IMS
and DMS are of the same order."  We measure mean ejections per placement
for both schedulers across the cluster sweep and assert they stay within
one order of magnitude on average, and small in absolute terms.
"""

from repro.experiments import backtracking_report, mean_ejections_per_placement

from .conftest import render


def test_backtracking_same_order(benchmark, paper_sweep):
    figure = benchmark.pedantic(
        lambda: backtracking_report(paper_sweep), rounds=1, iterations=1
    )
    render(figure)

    ims_values = figure.series["ims"]
    dms_values = figure.series["dms"]

    # Absolute scale: both schedulers place far more often than they
    # eject (ejections per placement well below 1).
    assert max(ims_values) < 1.0
    assert max(dms_values) < 1.0

    # Averaged across the sweep, the two stay within one order of
    # magnitude (the paper's "same order" claim).
    ims_mean = sum(ims_values) / len(ims_values)
    dms_mean = sum(dms_values) / len(dms_values)
    assert dms_mean <= 10.0 * max(ims_mean, 0.01)


def test_backtracking_grows_with_clusters(paper_sweep):
    """DMS ejections concentrate at wide rings, where the paper says the
    extra backtracking comes from scarce move slots, not long searches."""
    narrow = mean_ejections_per_placement(paper_sweep, 2, "dms")
    wide = max(
        mean_ejections_per_placement(paper_sweep, k, "dms") for k in (8, 9, 10)
    )
    assert wide >= narrow - 1e-9
