"""ABL-TOPOLOGY — what the bi-directional ring buys.

The paper's machine connects clusters in a bi-directional ring; section
3 lists "the number of possible paths to create a chain should be
small" among the architecture properties DMS needs.  A linear array is
the nearest alternative: one chain path per far pair, longer worst-case
distances, end clusters with a single neighbour.  The ring should
produce (weakly) less II overhead.
"""

import pytest

from repro.config import SchedulerConfig
from repro.experiments import SweepConfig, ii_overhead_fraction, run_sweep

from .conftest import render

RINGS = (4, 6, 8)


@pytest.fixture(scope="module")
def ring_runs(suite_loops):
    return run_sweep(
        suite_loops, SweepConfig(cluster_counts=RINGS, topology="ring")
    )


def test_ring_beats_linear_array(benchmark, suite_loops, ring_runs):
    def sweep_linear():
        return run_sweep(
            suite_loops, SweepConfig(cluster_counts=RINGS, topology="linear")
        )

    linear_runs = benchmark.pedantic(sweep_linear, rounds=1, iterations=1)

    print()
    print(f"{'clusters':>8} {'ring %':>8} {'linear %':>9}")
    ring_total = 0.0
    linear_total = 0.0
    for k in RINGS:
        ring = 100.0 * ii_overhead_fraction(ring_runs, k)
        linear = 100.0 * ii_overhead_fraction(linear_runs, k)
        ring_total += ring
        linear_total += linear
        print(f"{k:>8} {ring:>8.2f} {linear:>9.2f}")

    # The wraparound link can only help: aggregate overhead must not be
    # worse on the ring.
    assert ring_total <= linear_total + 1e-9
