"""ABL-TOPOLOGY — II overhead across cluster interconnects.

The paper's machine connects clusters in a bi-directional ring; section
3 lists "the number of possible paths to create a chain should be
small" among the architecture properties DMS needs.  The topology
registry makes the comparison four-way:

* **linear** — one chain path per far pair, longest distances (what the
  ring's wraparound link buys);
* **ring**   — the paper's interconnect;
* **mesh**   — the CGRA-style 2D grid of the follow-on literature
  (shorter diameters, more chain paths);
* **crossbar** — every pair adjacent: the no-communication-conflict
  floor of the study.

Better-connected interconnects can only help, so aggregate II overhead
must be (weakly) monotone: crossbar <= ring <= linear.
"""

import pytest

from repro.experiments import SweepConfig, ii_overhead_fraction, run_sweep

RINGS = (4, 6, 8)
TOPOLOGIES = ("linear", "ring", "mesh", "crossbar")


@pytest.fixture(scope="module")
def ring_runs(suite_loops):
    return run_sweep(
        suite_loops, SweepConfig(cluster_counts=RINGS, topology="ring")
    )


def test_interconnect_overhead_ordering(benchmark, suite_loops, ring_runs):
    def sweep_others():
        return {
            topology: run_sweep(
                suite_loops,
                SweepConfig(cluster_counts=RINGS, topology=topology),
            )
            for topology in TOPOLOGIES
            if topology != "ring"
        }

    runs = benchmark.pedantic(sweep_others, rounds=1, iterations=1)
    runs["ring"] = ring_runs

    print()
    header = " ".join(f"{t + ' %':>10}" for t in TOPOLOGIES)
    print(f"{'clusters':>8} {header}")
    totals = {topology: 0.0 for topology in TOPOLOGIES}
    for k in RINGS:
        row = []
        for topology in TOPOLOGIES:
            overhead = 100.0 * ii_overhead_fraction(runs[topology], k)
            totals[topology] += overhead
            row.append(f"{overhead:>10.2f}")
        print(f"{k:>8} {' '.join(row)}")

    # Adding links can only help: the crossbar (all pairs adjacent) is
    # the floor, and the ring's wraparound must not lose to the linear
    # array it extends.
    assert totals["crossbar"] <= totals["ring"] + 1e-9
    assert totals["ring"] <= totals["linear"] + 1e-9
