"""FIG6 — "IPC - Instruction per cycle" (paper figure 6).

Regenerates the aggregate useful-IPC curves (copy and move operations
excluded, prologue/kernel/epilogue included) and asserts the anchors:

* IPC improves with machine width up to 21 FUs for every series;
* set 1 clustered levels off beyond 21 FUs (7 clusters) — the marginal
  IPC per added FU collapses relative to set 2;
* set 2 keeps improving through 30 FUs, confirming the paper's claim
  that DMS "may be effective with these loops for even wider-issue
  machines".
"""

from repro.experiments import figure6

from .conftest import render


def test_fig6_ipc(benchmark, paper_sweep):
    figure = benchmark.pedantic(
        lambda: figure6(paper_sweep), rounds=1, iterations=1
    )
    render(figure)

    # Anchor 1: IPC grows up to 21 FUs for all four series.
    for label, series in figure.series.items():
        for narrow, wide in ((3.0, 12.0), (12.0, 21.0)):
            assert figure.series_value(label, wide) > figure.series_value(
                label, narrow
            ), label

    # Anchor 2: clustered IPC does not exceed unclustered at equal width
    # (1% slack: DMS's diversified restarts occasionally out-pack IMS's
    # single greedy pass on individual loops).
    for set_label in ("set1", "set2"):
        for fus in figure.x:
            assert figure.series_value(
                f"{set_label}_clustered", fus
            ) <= 1.01 * figure.series_value(f"{set_label}_unclustered", fus)

    # Anchor 3: set 2 keeps improving through 30 FUs.
    assert figure.series_value("set2_clustered", 30.0) > figure.series_value(
        "set2_clustered", 21.0
    )

    # Anchor 4: beyond 21 FUs, set 1's clustered gains are marginal
    # compared to set 2's (the levelling-off of figure 6).
    set1_gain = figure.series_value("set1_clustered", 30.0) / max(
        1e-9, figure.series_value("set1_clustered", 21.0)
    )
    set2_gain = figure.series_value("set2_clustered", 30.0) / max(
        1e-9, figure.series_value("set2_clustered", 21.0)
    )
    assert set2_gain > set1_gain

    # Anchor 5: at 30 FUs, vectorizable loops sustain far higher IPC.
    assert figure.series_value("set2_clustered", 30.0) > 1.4 * figure.series_value(
        "set1_clustered", 30.0
    )
