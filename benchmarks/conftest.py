"""Shared fixtures for the benchmark harness.

The paper-figure benchmarks share one machine sweep (1-10 clusters) over
the surrogate suite.  ``REPRO_BENCH_LOOPS`` scales the workload:

* default 48 — a representative sample, minutes of total runtime;
* 1258 — the paper's full population (tens of minutes, pure Python).

Benchmarks assert the *shape* of each figure (who wins, where the knee
sits) with tolerances wide enough for the sampled suite.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import SweepConfig, run_sweep
from repro.workloads import perfect_club_surrogate

BENCH_LOOPS = int(os.environ.get("REPRO_BENCH_LOOPS", "48"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1999"))
FULL_CLUSTER_RANGE = tuple(range(1, 11))


@pytest.fixture(scope="session")
def suite_loops():
    return perfect_club_surrogate(BENCH_LOOPS, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def paper_sweep(suite_loops):
    """The figure-4/5/6 sweep, shared by every figure benchmark."""
    return run_sweep(
        suite_loops, SweepConfig(cluster_counts=FULL_CLUSTER_RANGE)
    )


def render(figure) -> None:
    """Print a regenerated figure below the benchmark output."""
    print()
    print(figure.render_table())
