"""ABL-CHAIN — the paper's chain-selection rule vs a naive one.

The paper selects among chain options by maximising the bottleneck free
Copy-FU slots (tie: fewest moves).  The naive baseline explores only the
shorter ring direction per far predecessor.  The full rule must never
lose on aggregate II, because the shorter direction is always among the
options it scores.
"""

import pytest

from repro.config import SchedulerConfig
from repro.experiments import SweepConfig, run_sweep

WIDE_RINGS = (6, 8, 10)


def total_dms_ii(runs):
    return sum(r.ii for r in runs if r.scheduler == "dms")


def total_dms_moves(runs):
    return sum(r.n_moves for r in runs if r.scheduler == "dms")


@pytest.fixture(scope="module")
def paper_policy_runs(suite_loops):
    return run_sweep(
        suite_loops,
        SweepConfig(
            cluster_counts=WIDE_RINGS,
            scheduler_config=SchedulerConfig(prefer_shortest_chain_only=False),
        ),
    )


def test_chain_policy_vs_shortest_only(benchmark, suite_loops, paper_policy_runs):
    def sweep_shortest_only():
        return run_sweep(
            suite_loops,
            SweepConfig(
                cluster_counts=WIDE_RINGS,
                scheduler_config=SchedulerConfig(
                    prefer_shortest_chain_only=True
                ),
            ),
        )

    naive_runs = benchmark.pedantic(sweep_shortest_only, rounds=1, iterations=1)

    paper_ii = total_dms_ii(paper_policy_runs)
    naive_ii = total_dms_ii(naive_runs)
    print()
    print(f"aggregate DMS II   paper policy: {paper_ii}   shortest-only: {naive_ii}")
    print(
        f"moves inserted     paper policy: {total_dms_moves(paper_policy_runs)}"
        f"   shortest-only: {total_dms_moves(naive_runs)}"
    )
    # Scoring both directions explores a superset of options, but greedy
    # scheduling is not monotone in the option set; allow 2% noise while
    # requiring the full rule to be competitive in aggregate.
    assert paper_ii <= 1.02 * naive_ii


def test_both_policies_schedule_everything(paper_policy_runs, suite_loops):
    expected = len(suite_loops) * len(WIDE_RINGS) * 2
    assert len(paper_policy_runs) == expected
