"""ABL-SINGLEUSE — copy-chain shape: the paper's linear chain vs a tree.

The single-use rewrite can spread copies along a linear chain (the
paper's shape, which distributes move pressure away from the producer)
or a balanced binary tree (shallower added latency).  Both must deliver
valid schedules; the bench compares aggregate DMS II and copy counts.
"""

import pytest

from repro.config import SchedulerConfig
from repro.experiments import SweepConfig, run_sweep

RINGS = (4, 8)


def total_dms_ii(runs):
    return sum(r.ii for r in runs if r.scheduler == "dms")


@pytest.fixture(scope="module")
def chain_runs(suite_loops):
    return run_sweep(
        suite_loops,
        SweepConfig(
            cluster_counts=RINGS,
            scheduler_config=SchedulerConfig(single_use_strategy="chain"),
        ),
    )


def test_single_use_chain_vs_tree(benchmark, suite_loops, chain_runs):
    def sweep_tree():
        return run_sweep(
            suite_loops,
            SweepConfig(
                cluster_counts=RINGS,
                scheduler_config=SchedulerConfig(single_use_strategy="tree"),
            ),
        )

    tree_runs = benchmark.pedantic(sweep_tree, rounds=1, iterations=1)

    chain_ii = total_dms_ii(chain_runs)
    tree_ii = total_dms_ii(tree_runs)
    chain_copies = sum(r.n_copies for r in chain_runs if r.scheduler == "dms")
    tree_copies = sum(r.n_copies for r in tree_runs if r.scheduler == "dms")
    print()
    print(f"aggregate DMS II    chain: {chain_ii}    tree: {tree_ii}")
    print(f"copies inserted     chain: {chain_copies}    tree: {tree_copies}")

    # Same number of copies either way (n-2 copies serve n consumers in
    # both shapes); both must schedule the entire suite.
    assert chain_copies == tree_copies
    assert len(tree_runs) == len(chain_runs)
    # The shapes should perform comparably; neither may collapse.
    assert tree_ii <= 1.25 * chain_ii
    assert chain_ii <= 1.25 * tree_ii
