"""Micro-benchmarks of the scheduler components (real timing runs).

These time the hot pieces of the library on representative inputs:
MII bounds, the transforms, IMS, and DMS at two ring widths plus the
super-linear scaling regime (unroll x8/x16, 8-cluster mesh/crossbar).
Useful for tracking implementation performance regressions, not paper
claims.  ``repro bench`` runs the same case families with a committed
baseline and a CI tolerance gate (see README "Performance").
"""

import pytest

from repro.ir import DEFAULT_LATENCIES
from repro.ir.transforms import single_use_ddg, unroll_ddg
from repro.machine import clustered_vliw, unclustered_vliw
from repro.scheduling import (
    DistributedModuloScheduler,
    IterativeModuloScheduler,
    compute_mii,
)
from repro.workloads import make_kernel


@pytest.fixture(scope="module")
def fir_ddg():
    return make_kernel("fir_filter", taps=10).ddg


@pytest.fixture(scope="module")
def lms_ddg():
    return make_kernel("lms_update", taps=5).ddg


def test_mii_computation(benchmark, lms_ddg):
    machine = unclustered_vliw(4)
    result = benchmark(lambda: compute_mii(lms_ddg, machine, DEFAULT_LATENCIES))
    assert result.mii >= 1


def test_unroll_transform(benchmark, fir_ddg):
    unrolled = benchmark(lambda: unroll_ddg(fir_ddg, 8))
    assert len(unrolled) == 8 * len(fir_ddg)


def test_single_use_transform(benchmark, fir_ddg):
    transformed = benchmark(lambda: single_use_ddg(unroll_ddg(fir_ddg, 4)))
    assert len(transformed) >= 4 * len(fir_ddg)


def test_ims_throughput(benchmark, fir_ddg):
    machine = unclustered_vliw(4)
    ddg = unroll_ddg(fir_ddg, 4)
    scheduler = IterativeModuloScheduler(machine)
    result = benchmark(lambda: scheduler.schedule(ddg.copy()))
    assert result.ii >= 1


def test_dms_throughput_narrow(benchmark, fir_ddg):
    machine = clustered_vliw(4)
    ddg = single_use_ddg(unroll_ddg(fir_ddg, 4))
    scheduler = DistributedModuloScheduler(machine)
    result = benchmark(lambda: scheduler.schedule(ddg.copy()))
    assert result.ii >= 1


def test_dms_throughput_wide(benchmark, lms_ddg):
    machine = clustered_vliw(8)
    ddg = single_use_ddg(lms_ddg)
    scheduler = DistributedModuloScheduler(machine)
    result = benchmark(lambda: scheduler.schedule(ddg.copy()))
    assert result.ii >= 1


# ----------------------------------------------------------------------
# Scaling regime: wide unrolls and many clusters, where scheduling cost
# used to grow super-linearly (chain planning + backtracking pressure).
# The cases come straight from the `repro bench` matrix, so these
# pytest-benchmark numbers always measure exactly what the CI gate
# (BENCH_scheduler.json) measures.
# ----------------------------------------------------------------------

from repro.bench import CASES as BENCH_CASES

_SCALING_NAMES = (
    "dms_unroll8",
    "dms_unroll16",
    "dms_unroll8_ladder",
    "dms_unroll16_ladder",
    "dms_mesh8",
    "dms_crossbar8",
)
_SCALING_CASES = [case for case in BENCH_CASES if case.name in _SCALING_NAMES]


@pytest.mark.parametrize(
    "case", _SCALING_CASES, ids=[case.name for case in _SCALING_CASES]
)
def test_dms_scaling(benchmark, case):
    thunk = case.build(None)
    result = benchmark(thunk)
    assert result.ii >= 1


@pytest.mark.parametrize("search", ("ladder", "adaptive"))
def test_search_policy_ii_parity_unroll16(benchmark, search):
    # The adaptive-vs-ladder pair above times the two policies; this pins
    # that whichever is measured, the II they reach is identical (the
    # search layer's core contract on the hottest case).
    from repro.bench import _dms_thunk

    thunk = _dms_thunk("fir_filter", {"taps": 8}, 16, "ring", 8, search=search)
    result = benchmark(thunk)
    assert result.ii == 18
