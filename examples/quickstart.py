#!/usr/bin/env python3
"""Quickstart: build a loop, schedule it on a clustered VLIW, inspect it.

Builds the dot-product loop ``acc += x[i] * c[i]`` by hand, compiles it
for a 4-cluster machine (the paper's {1 L/S, 1 Add, 1 Mul, 1 Copy} per
cluster), validates and simulates the schedule, and prints the kernel.

Run:  python examples/quickstart.py
"""

from repro import (
    LoopBuilder,
    assembly_for,
    clustered_vliw,
    compile_loop,
    simulate,
    validate_schedule,
)


def build_dot_product():
    """acc += x[i] * c[i] with a loop-carried accumulator."""
    b = LoopBuilder("dot_product")
    x = b.load("x[i]")
    c = b.load("c[i]")
    acc = b.placeholder()  # forward reference for the recurrence
    total = b.add(b.mul(x, c), b.carried(acc, 1), tag="acc")
    b.bind(acc, total)
    return b.build(trip_count=256)


def main() -> None:
    loop = build_dot_product()
    print("== the loop ==")
    print(loop.ddg.pretty())
    print()

    machine = clustered_vliw(4)
    print(f"== target: {machine.describe()} ==")
    compiled = compile_loop(loop, machine, equivalent_k=4)
    result = compiled.result
    print(result.summary())
    print(
        f"unroll x{compiled.unroll_factor}, "
        f"{compiled.cycles} cycles for {loop.trip_count} iterations, "
        f"IPC {compiled.ipc:.2f}"
    )
    print()

    # The independent checker re-verifies dependences, resources and the
    # ring communication constraints.
    validate_schedule(result)
    print("checker: schedule valid")

    # The simulator executes the pipelined schedule cycle by cycle,
    # enforcing FIFO queue discipline.
    report = simulate(result, iterations=16, allocation=compiled.allocation)
    print(
        f"simulator: ok={report.ok}, measured span {report.cycles_span} vs "
        f"model {report.cycles_model} cycles"
    )
    print()

    print("== kernel ==")
    print(assembly_for(result, compiled.allocation))


if __name__ == "__main__":
    main()
