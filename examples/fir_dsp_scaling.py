#!/usr/bin/env python3
"""DSP scaling study: an FIR filter across 1-8 clusters.

The paper motivates clustered VLIWs with DSP/numeric loops.  This example
compiles a 12-tap FIR filter (with load reuse, so the sample value has
fan-out 12 and needs the single-use copy chain) for every ring size and
shows how II, IPC, copies and moves evolve — the per-loop view of
figures 4-6.

Run:  python examples/fir_dsp_scaling.py
"""

from repro import (
    clustered_vliw,
    compile_loop,
    make_kernel,
    unclustered_vliw,
    validate_schedule,
)


def main() -> None:
    taps = 12
    loop = make_kernel("fir_filter", taps=taps, trip_count=4096)
    print(f"{taps}-tap FIR filter, {loop.n_ops} ops/iteration, "
          f"{loop.trip_count} iterations")
    print(f"sample fan-out before the single-use transform: "
          f"{loop.ddg.flow_fanout(0)}")
    print()

    header = (
        f"{'clusters':>8} {'FUs':>4} {'u':>3} {'II':>4} {'MII':>4} "
        f"{'copies':>7} {'moves':>6} {'cycles':>9} {'IPC':>6} {'vs uncl':>8}"
    )
    print(header)
    print("-" * len(header))
    for k in range(1, 9):
        clustered = compile_loop(loop, clustered_vliw(k), equivalent_k=k)
        unclustered = compile_loop(loop, unclustered_vliw(k), equivalent_k=k)
        validate_schedule(clustered.result)
        validate_schedule(unclustered.result)
        ratio = clustered.cycles / unclustered.cycles
        print(
            f"{k:>8} {3 * k:>4} {clustered.unroll_factor:>3} "
            f"{clustered.result.ii:>4} {clustered.result.mii:>4} "
            f"{clustered.result.n_copies:>7} {clustered.result.n_moves:>6} "
            f"{clustered.cycles:>9} {clustered.ipc:>6.2f} {ratio:>8.3f}"
        )
    print()
    print("'vs uncl' = clustered cycles / unclustered cycles at the same")
    print("FU count; 1.000 means partitioning cost nothing (paper fig. 5).")


if __name__ == "__main__":
    main()
