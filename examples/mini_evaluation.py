#!/usr/bin/env python3
"""A miniature of the paper's whole evaluation (figures 4, 5, 6).

Runs a 48-loop sample of the Perfect Club surrogate through the full
machine sweep (1-8 clusters) and prints the three figures plus the
backtracking comparison.  The full-size run (1258 loops, 1-10 clusters)
is `repro all-figures`; this one finishes in under a minute.

Run:  python examples/mini_evaluation.py
"""

import time

from repro.experiments import (
    SweepConfig,
    backtracking_report,
    figure4,
    figure5,
    figure6,
    run_sweep,
)
from repro.workloads import perfect_club_surrogate, suite_stats


def main() -> None:
    loops = perfect_club_surrogate(48, seed=1999)
    stats = suite_stats(loops)
    print(
        f"workload: {stats.n_loops} loops, "
        f"{100 * stats.vectorizable_fraction:.0f}% vectorizable, "
        f"mean {stats.mean_ops:.1f} ops"
    )
    started = time.time()
    runs = run_sweep(loops, SweepConfig(cluster_counts=[1, 2, 3, 4, 6, 8]))
    print(f"scheduled {len(runs)} (loop, machine) pairs "
          f"in {time.time() - started:.1f}s")
    print()
    for figure in (figure4(runs), figure5(runs), figure6(runs),
                   backtracking_report(runs)):
        print(figure.render_table())
        print()


if __name__ == "__main__":
    main()
