#!/usr/bin/env python3
"""Visualising a DMS schedule: Gantt chart, utilisation, DOT export.

Schedules a 3x3 colour-transform kernel on a 3-cluster machine and
renders the kernel as an FU-occupancy chart (one line per functional
unit, one column per MRT row), plus the partitioned dependence graph in
Graphviz DOT format.

Run:  python examples/visualize_schedule.py
"""

from repro import clustered_vliw, compile_loop, make_kernel
from repro.codegen import kernel_gantt, utilization_summary
from repro.ir import ddg_to_dot


def main() -> None:
    loop = make_kernel("rgb_to_yuv", trip_count=640)
    compiled = compile_loop(loop, clustered_vliw(3), equivalent_k=3)
    result = compiled.result

    print(result.summary())
    print()
    print(kernel_gantt(result))
    print()
    print(utilization_summary(result))
    print()

    clusters = {op_id: p.cluster for op_id, p in result.placements.items()}
    dot = ddg_to_dot(result.ddg, clusters)
    print("Graphviz DOT of the partitioned DDG (pipe into `dot -Tsvg`):")
    print()
    print(dot)


if __name__ == "__main__":
    main()
