#!/usr/bin/env python3
"""The storage argument: queue files vs a central register file.

The paper's section 1 motivates clustering with register-file scaling:
size and ports of a central RF grow with the FU count and hurt cycle
time.  This example makes the argument concrete on one kernel:

* the unclustered machine's schedule needs MaxLive central registers and
  (without queues) modulo variable expansion — kernel unrolling plus
  renamed register copies;
* the clustered machine's schedule spreads the same lifetimes over small
  per-cluster LRF queues and a few CQRF entries, with no expansion at
  all (queues rename implicitly).

Run:  python examples/queues_vs_registers.py
"""

from repro import clustered_vliw, compile_loop, make_kernel, unclustered_vliw
from repro.machine.cqrf import CQRFId
from repro.registers import allocate_queues, mve_report, register_pressure


def main() -> None:
    loop = make_kernel("fir_filter", taps=10, trip_count=2048)
    print(f"kernel: 10-tap FIR, {loop.n_ops} ops/iteration")
    print()

    header = (
        f"{'clusters':>8} {'FUs':>4} {'II':>4} "
        f"{'MaxLive':>8} {'MVE unroll':>11} {'MVE regs':>9} "
        f"{'max file':>9} {'cqrf depth':>11}"
    )
    print(header)
    print("-" * len(header))
    for k in (1, 2, 4, 6, 8):
        unclustered = compile_loop(
            loop, unclustered_vliw(k), equivalent_k=k, allocate=False
        )
        maxlive = register_pressure(unclustered.result)
        mve = mve_report(unclustered.result)

        clustered = compile_loop(loop, clustered_vliw(k), equivalent_k=k)
        allocation = allocate_queues(clustered.result)
        largest_file = max(
            (usage.queues_used for usage in allocation.files), default=0
        )
        cqrf_depth = max(
            (
                usage.max_depth
                for usage in allocation.files
                if isinstance(usage.file_id, CQRFId)
            ),
            default=0,
        )
        print(
            f"{k:>8} {3 * k:>4} {unclustered.result.ii:>4} "
            f"{maxlive:>8} {mve.kernel_unroll_max:>11} "
            f"{mve.total_registers:>9} {largest_file:>9} {cqrf_depth:>11}"
        )
    print()
    print("MaxLive / MVE columns: what the central-RF machine pays")
    print("(simultaneously live values; kernel copies and renamed")
    print("registers under modulo variable expansion).")
    print("max file / cqrf depth: the largest queue count any single")
    print("cluster file needs, and the deepest CQRF queue — both stay")
    print("small as the machine widens, which is the paper's point.")


if __name__ == "__main__":
    main()
