#!/usr/bin/env python3
"""Why the paper reports two loop sets: recurrences bound scaling.

Compares a highly vectorizable loop (``daxpy``) against a
recurrence-bound one (``iir_biquad``) across machine widths.  The
vectorizable loop keeps converting FUs into IPC (the paper's set 2);
the IIR's feedback circuit pins the II at RecMII no matter how many
clusters are added (set 1 behaviour at large widths).

Run:  python examples/recurrence_vs_vectorizable.py
"""

from repro import clustered_vliw, compile_loop, make_kernel


def scaling_row(loop, k):
    compiled = compile_loop(loop, clustered_vliw(k), equivalent_k=k)
    result = compiled.result
    return (
        f"{k:>8} {result.ii:>4} {result.rec_mii:>6} "
        f"{compiled.unroll_factor:>3} {compiled.ipc:>6.2f}"
    )


def main() -> None:
    vectorizable = make_kernel("daxpy", trip_count=2048)
    recurrent = make_kernel("iir_biquad", trip_count=2048)

    for loop, story in (
        (vectorizable, "daxpy (vectorizable, set 2): IPC keeps climbing"),
        (recurrent, "iir_biquad (recurrence, set 1): RecMII caps the rate"),
    ):
        print(f"== {story} ==")
        print(f"{'clusters':>8} {'II':>4} {'RecMII':>6} {'u':>3} {'IPC':>6}")
        for k in (1, 2, 4, 6, 8, 10):
            print(scaling_row(loop, k))
        print()

    print("The IIR's feedback y[i] = f(y[i-1], y[i-2]) forms a dependence")
    print("circuit whose latency/distance ratio lower-bounds the II")
    print("(RecMII); unrolling replicates the circuit without relaxing it,")
    print("so extra clusters stop helping — exactly why the paper's set-1")
    print("curves flatten while set-2 keeps improving (figures 5 and 6).")


if __name__ == "__main__":
    main()
