#!/usr/bin/env python3
"""Anatomy of a move chain (DMS strategy 2).

Constructs a partial schedule by hand: two producers pinned on opposite
sides of a 6-cluster ring, then asks the chain planner for the best way
to schedule their common consumer.  Shows the two ring directions, the
chosen option, the move operations inserted into the DDG, and the final
schedule after the consumer is placed.

Run:  python examples/chain_anatomy.py
"""

from repro import DDG, DEFAULT_LATENCIES, OpCode, clustered_vliw
from repro.config import SchedulerConfig
from repro.ir.operations import Operation, use
from repro.scheduling import ChainPlanner, ChainRegistry, PartialSchedule


def main() -> None:
    machine = clustered_vliw(6)
    topology = machine.topology

    ddg = DDG("chain_demo")
    ddg.add_operation(Operation(0, OpCode.LOAD, (), "a[i]"))
    ddg.add_operation(Operation(1, OpCode.LOAD, (), "b[i]"))
    ddg.add_operation(Operation(2, OpCode.ADD, (use(0), use(1)), "a+b"))

    schedule = PartialSchedule(ddg, machine, ii=4, latencies=DEFAULT_LATENCIES)
    schedule.place(0, 0, 0)  # producer A on cluster 0
    schedule.place(1, 0, 3)  # producer B on cluster 3 (distance 3)

    print("ring of 6 clusters; producers pinned at clusters 0 and 3")
    print(f"distance(0, 3) = {topology.distance(0, 3)}")
    print(
        "communication-compatible clusters for the consumer:",
        schedule.comm_compatible_clusters(2) or "none",
    )
    print()

    print("ring paths from cluster 3 to cluster 1 (two directions):")
    for path in topology.paths(3, 1):
        print(
            f"  {' -> '.join(f'c{c}' for c in path.clusters)}"
            f"  ({path.n_moves} move(s) in {list(path.intermediates)})"
        )
    print()

    planner = ChainPlanner(schedule, SchedulerConfig())
    plan = planner.plan(2)
    print(f"planner chose cluster {plan.cluster} "
          f"(bottleneck Copy-FU slack {plan.bottleneck_slack}, "
          f"{plan.n_moves} move(s))")
    for chain in plan.chains:
        hops = " -> ".join(f"c{c}" for c in chain.path.clusters)
        print(
            f"  chain from v{chain.producer}: {hops}, "
            f"move issue times {list(chain.move_times)}"
        )
    print()

    registry = ChainRegistry()
    planner.apply(2, plan, registry)
    estart = max(0, schedule.earliest_start(2))
    # Clean slot in the planned cluster (always exists inside one II window
    # here because the machine is empty).
    for t in range(estart, estart + schedule.ii):
        if schedule.mrt.is_free(plan.cluster, ddg.op(2).fu_kind, t):
            schedule.place(2, t, plan.cluster)
            break

    print("DDG after chain insertion:")
    print(ddg.pretty())
    print()
    print("final placements (op -> cycle @ cluster):")
    for op_id in ddg.op_ids:
        placement = schedule.placement(op_id)
        op = ddg.op(op_id)
        print(
            f"  v{op_id:<2} {op.opcode.value:<5} -> "
            f"t={placement.time} @ c{placement.cluster}"
        )
    print()
    print("the move reads CQRF[c3->c2] and writes CQRF[c2->c1]: a value")
    print("crosses one indirect hop per move, with compile-time timing.")


if __name__ == "__main__":
    main()
