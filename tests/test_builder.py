"""Tests for the fluent loop builder."""

import pytest

from repro.errors import DDGError
from repro.ir import LoopBuilder, OpCode


class TestBasicConstruction:
    def test_simple_stream(self):
        b = LoopBuilder("s")
        x = b.load("x[i]")
        y = b.add(x, "k")
        b.store(y, "y[i]")
        loop = b.build(trip_count=10)
        assert loop.n_ops == 3
        assert loop.trip_count == 10
        assert not loop.ddg.has_recurrence()

    def test_operand_kinds(self):
        b = LoopBuilder("ops")
        x = b.load()
        value = b.add(x, 3)  # numeric literal becomes an external symbol
        op = b.ddg.op(value.op_id)
        assert op.srcs[0].producer == x.op_id
        assert op.srcs[1].symbol == "#3"

    def test_all_factories_emit_expected_opcodes(self):
        b = LoopBuilder("f")
        x = b.load()
        y = b.load()
        cases = [
            (b.add(x, y), OpCode.ADD),
            (b.sub(x, y), OpCode.SUB),
            (b.mul(x, y), OpCode.MUL),
            (b.div(x, y), OpCode.DIV),
            (b.neg(x), OpCode.NEG),
            (b.cmp(x, y), OpCode.CMP),
            (b.min(x, y), OpCode.MIN),
            (b.max(x, y), OpCode.MAX),
            (b.sqrt(x), OpCode.SQRT),
            (b.select(x, y, x), OpCode.SELECT),
        ]
        for value, opcode in cases:
            assert b.ddg.op(value.op_id).opcode == opcode

    def test_build_validates(self):
        b = LoopBuilder("v")
        x = b.load()
        b.store(x)
        loop = b.build()
        loop.ddg.validate()

    def test_build_twice_rejected(self):
        b = LoopBuilder("t")
        b.load()
        b.build()
        with pytest.raises(DDGError):
            b.load()


class TestRecurrences:
    def test_placeholder_bind_creates_cycle(self):
        b = LoopBuilder("rec")
        x = b.load()
        acc = b.placeholder()
        total = b.add(x, b.carried(acc, 1))
        b.bind(acc, total)
        loop = b.build()
        assert loop.ddg.has_recurrence()
        edge = [e for e in loop.ddg.out_edges(total.op_id) if e.dst == total.op_id]
        assert edge and edge[0].omega == 1

    def test_unbound_placeholder_rejected(self):
        b = LoopBuilder("unbound")
        x = b.load()
        ph = b.placeholder()
        b.add(x, b.carried(ph, 1))
        with pytest.raises(DDGError):
            b.build()

    def test_double_bind_rejected(self):
        b = LoopBuilder("double")
        ph = b.placeholder()
        x = b.load()
        value = b.add(x, b.carried(ph, 1))
        b.bind(ph, value)
        with pytest.raises(DDGError):
            b.bind(ph, value)

    def test_carried_distance_two(self):
        b = LoopBuilder("d2")
        ph = b.placeholder()
        x = b.load()
        value = b.add(b.carried(ph, 2), x)
        b.bind(ph, value)
        loop = b.build()
        self_edges = [
            e for e in loop.ddg.out_edges(value.op_id) if e.dst == value.op_id
        ]
        assert self_edges[0].omega == 2

    def test_carried_requires_positive_distance(self):
        b = LoopBuilder("bad")
        x = b.load()
        with pytest.raises(DDGError):
            b.carried(x, 0)

    def test_foreign_placeholder_rejected(self):
        b1 = LoopBuilder("a")
        b2 = LoopBuilder("b")
        ph = b1.placeholder()
        x = b2.load()
        with pytest.raises(DDGError):
            b2.add(x, b.carried(ph, 1)) if False else b2.add(x, ph)


class TestMemDeps:
    def test_mem_dep_edge(self):
        b = LoopBuilder("mem")
        x = b.load("a[i]")
        st = b.store(x, "a[i+1]")
        ld = b.load("a[i]")
        b.mem_dep(st, ld, omega=1, latency=1)
        loop = b.build()
        mem_edges = [e for e in loop.ddg.edges() if not e.is_flow]
        assert len(mem_edges) == 1
        assert mem_edges[0].omega == 1
