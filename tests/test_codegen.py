"""Tests for VLIW program construction and assembly rendering."""

import pytest

from repro.codegen import assembly_for, build_program, render_program
from repro.errors import CodegenError
from repro.ir import OpCode
from repro.ir.transforms import single_use_ddg
from repro.machine import clustered_vliw, unclustered_vliw
from repro.registers import allocate_queues
from repro.scheduling import (
    DistributedModuloScheduler,
    IterativeModuloScheduler,
)
from repro.workloads import make_kernel

from .conftest import build_reduction_loop, build_stream_loop


def ims_program(loop=None, k=2):
    result = IterativeModuloScheduler(unclustered_vliw(k)).schedule(
        (loop or build_stream_loop()).ddg.copy()
    )
    return build_program(result), result


def dms_program(loop, clusters=4, transform=True):
    ddg = single_use_ddg(loop.ddg) if transform else loop.ddg.copy()
    result = DistributedModuloScheduler(clustered_vliw(clusters)).schedule(ddg)
    allocation = allocate_queues(result)
    return build_program(result, allocation), result


class TestKernelTable:
    def test_every_op_appears_once(self):
        program, result = ims_program()
        op_ids = [b.op_id for row in program.kernel for b in row]
        assert sorted(op_ids) == list(result.ddg.op_ids)

    def test_rows_match_modulo_time(self):
        program, result = ims_program()
        for row_index in range(program.ii):
            for binding in program.row(row_index):
                assert result.placements[binding.op_id].time % result.ii == row_index

    def test_stage_annotation(self):
        program, result = ims_program()
        for row in program.kernel:
            for binding in row:
                assert binding.stage == result.placements[binding.op_id].time // result.ii

    def test_fu_bindings_unique(self):
        program, _ = ims_program()
        for row in program.kernel:
            slots = [str(b.fu) for b in row]
            assert len(slots) == len(set(slots))

    def test_fu_capacity_respected(self):
        loop = make_kernel("fir_filter", taps=6)
        program, result = dms_program(loop, clusters=4)
        for row in program.kernel:
            for binding in row:
                capacity = result.machine.fu_in_cluster(
                    binding.fu.cluster, binding.fu.kind
                )
                assert binding.fu.index < capacity

    def test_row_bounds(self):
        program, _ = ims_program()
        with pytest.raises(CodegenError):
            program.row(program.ii)


class TestRamp:
    def test_prologue_cycle_count(self):
        program, result = ims_program()
        assert program.prologue_cycles == (result.stage_count - 1) * result.ii
        for issue in program.prologue:
            assert issue.cycle < program.prologue_cycles

    def test_prologue_plus_kernel_reaches_steady_state(self):
        program, result = ims_program(build_reduction_loop())
        # Every op must have issued at least once during the ramp + first
        # kernel copy.
        seen = {b.op_id for issue in program.prologue for b in issue.bindings}
        seen.update(b.op_id for row in program.kernel for b in row)
        assert seen == set(result.ddg.op_ids)

    def test_epilogue_nonempty_for_multistage(self):
        program, result = ims_program()
        if result.stage_count > 1:
            assert program.epilogue


class TestOperandLabels:
    def test_external_symbols_shown(self):
        program, _ = ims_program()
        rendered = render_program(program)
        assert "k" in rendered

    def test_queue_annotations_present_with_allocation(self):
        loop = make_kernel("fir_filter", taps=4)
        program, _ = dms_program(loop, clusters=4)
        rendered = render_program(program, show_ramp=False)
        assert "lrf[" in rendered or "cqrf[" in rendered

    def test_loop_carried_marker(self):
        program, _ = ims_program(build_reduction_loop())
        rendered = render_program(program)
        assert "@-1" in rendered


class TestRendering:
    def test_header_mentions_ii_and_stages(self):
        program, result = ims_program()
        rendered = render_program(program)
        assert f"II={result.ii}" in rendered
        assert "kernel:" in rendered

    def test_assembly_for_convenience(self):
        loop = build_stream_loop()
        result = IterativeModuloScheduler(unclustered_vliw(2)).schedule(
            loop.ddg.copy()
        )
        text = assembly_for(result)
        assert "kernel:" in text
        assert "prologue:" not in text  # ramp hidden by default

    def test_empty_rows_render_nop(self):
        loop = build_reduction_loop()
        result = IterativeModuloScheduler(unclustered_vliw(4)).schedule(
            loop.ddg.copy()
        )
        rendered = render_program(build_program(result), show_ramp=False)
        # Wide machine, small loop: some rows may be empty.
        assert "kernel:" in rendered
