"""Units for the flow-analysis layers under the lint rules.

Covers the three engine modules the flow-aware rules stand on:

* :mod:`repro.analysis.cfg` — block/edge shapes for branches, loops,
  ``try``/``except``/``finally``, diverting statements, and the
  determinism of construction and reverse post-order;
* :mod:`repro.analysis.dataflow` — event linearisation (evaluation
  order, target-role loads, mutating-method stores, deferred lambda and
  comprehension bodies), the forward solver, and reaching definitions
  across joins and back edges;
* :mod:`repro.analysis.callgraph` — import-alias resolution (incl.
  relative imports), method/lambda indexing, call edges, and the
  disk-cache round trip.
"""

import ast
import json
import textwrap

from repro.analysis.callgraph import (
    ProjectIndex,
    collect_module_aliases,
    module_name_for,
)
from repro.analysis.cfg import BranchTest, LoopHeader, build_cfg
from repro.analysis.dataflow import (
    ReachingDefs,
    definitions_of,
    dotted_chain,
    iter_events,
    solve_forward,
)


def _func(source):
    tree = ast.parse(textwrap.dedent(source))
    return tree.body[0]


def _cfg(source):
    return build_cfg(_func(source))


def _events(stmt_source):
    stmt = ast.parse(textwrap.dedent(stmt_source)).body[0]
    return list(iter_events(stmt))


def _defs_at(cfg, func_node, bid, name):
    in_states = solve_forward(cfg, ReachingDefs(func_node))
    return sorted(in_states[bid].get(name, frozenset()),
                  key=lambda d: d.sort_key())


def _block_with_store(cfg, name):
    """The block whose elements bind *name* (via definitions_of)."""
    for block in cfg.blocks:
        for element in block.elements:
            if any(d.name == name for d in definitions_of(element)):
                return block.bid
    raise AssertionError(f"no block stores {name}")


# ----------------------------------------------------------------------
# CFG shapes
# ----------------------------------------------------------------------


class TestCFGShapes:
    def test_if_else_joins(self):
        cfg = _cfg(
            """
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                use(a)
            """
        )
        entry = cfg.block(cfg.entry)
        assert isinstance(entry.elements[-1], BranchTest)
        then_bid, else_bid = entry.succs
        (join_bid,) = cfg.block(then_bid).succs
        assert cfg.block(else_bid).succs == [join_bid]
        assert sorted(cfg.block(join_bid).preds) == sorted(
            [then_bid, else_bid]
        )
        # The join falls through to the synthetic exit.
        assert cfg.exit in cfg.block(join_bid).succs

    def test_if_without_else_keeps_fallthrough_edge(self):
        cfg = _cfg(
            """
            def f(x):
                if x:
                    a = 1
                after()
            """
        )
        entry = cfg.block(cfg.entry)
        then_bid = entry.succs[0]
        (join_bid,) = cfg.block(then_bid).succs
        # Skipping the branch reaches the join straight from the test.
        assert join_bid in entry.succs

    def test_while_has_back_edge(self):
        cfg = _cfg(
            """
            def f(n):
                total = 0
                while n:
                    total = total + 1
                return total
            """
        )
        header = next(
            b.bid for b in cfg.blocks
            if any(isinstance(e, BranchTest) for e in b.elements)
        )
        body = _block_with_store(cfg, "total")
        # entry also stores total; pick the body block, which loops back.
        bodies = [
            b.bid for b in cfg.blocks
            if header in b.succs and b.bid != cfg.entry
        ]
        assert bodies, "loop body must edge back to the header"
        assert body in (cfg.entry, *bodies)

    def test_for_header_owns_iter_and_target(self):
        cfg = _cfg(
            """
            def f(items):
                for item in items:
                    use(item)
            """
        )
        headers = [
            b for b in cfg.blocks
            if any(isinstance(e, LoopHeader) for e in b.elements)
        ]
        assert len(headers) == 1
        header = headers[0]
        assert len(header.succs) == 2  # body and after
        assert any(header.bid in cfg.block(s).succs for s in header.succs)

    def test_break_diverts_to_after_continue_to_header(self):
        cfg = _cfg(
            """
            def f(items):
                for item in items:
                    if item:
                        break
                    continue
                done()
            """
        )
        header = next(
            b.bid for b in cfg.blocks
            if any(isinstance(e, LoopHeader) for e in b.elements)
        )
        after = [s for s in cfg.block(header).succs][1]
        break_block = next(
            b.bid for b in cfg.blocks
            if any(isinstance(e, ast.Break) for e in b.elements)
        )
        continue_block = next(
            b.bid for b in cfg.blocks
            if any(isinstance(e, ast.Continue) for e in b.elements)
        )
        assert after in cfg.block(break_block).succs
        assert header in cfg.block(continue_block).succs

    def test_return_leaves_no_fallthrough(self):
        cfg = _cfg(
            """
            def f(x):
                if x:
                    return 1
                return 2
            """
        )
        return_blocks = [
            b for b in cfg.blocks
            if any(isinstance(e, ast.Return) for e in b.elements)
        ]
        assert len(return_blocks) == 2
        for block in return_blocks:
            assert block.succs == [cfg.exit]

    def test_unreachable_code_still_gets_a_block(self):
        cfg = _cfg(
            """
            def f():
                return 1
                dead()
            """
        )
        dead = [
            b for b in cfg.blocks
            if any(
                isinstance(e, ast.Expr)
                and isinstance(e.value, ast.Call)
                for e in b.elements
            )
        ]
        assert dead and not dead[0].preds  # orphan, but walkable

    def test_every_try_block_edges_into_each_handler(self):
        cfg = _cfg(
            """
            def f(c):
                try:
                    if c:
                        a()
                    else:
                        b()
                except Exception:
                    h()
                done()
            """
        )
        handler = next(
            b.bid for b in cfg.blocks
            if any(
                isinstance(e, ast.Expr)
                and isinstance(e.value, ast.Call)
                and isinstance(e.value.func, ast.Name)
                and e.value.func.id == "h"
                for e in b.elements
            )
        )
        preds = cfg.block(handler).preds
        # The body head plus every block created under the try (then
        # arm, else arm, join) all edge into the handler.
        assert len(preds) >= 3

    def test_finally_reachable_when_all_paths_divert(self):
        cfg = _cfg(
            """
            def f():
                try:
                    return work()
                finally:
                    cleanup()
            """
        )
        final = next(
            b for b in cfg.blocks
            if any(
                isinstance(e, ast.Expr)
                and isinstance(e.value, ast.Call)
                and isinstance(e.value.func, ast.Name)
                and e.value.func.id == "cleanup"
                for e in b.elements
            )
        )
        assert final.preds  # still wired in despite the diverting body

    def test_construction_and_rpo_are_deterministic(self):
        source = """
            def f(xs, flag):
                acc = 0
                for x in xs:
                    if flag:
                        try:
                            acc += x
                        except TypeError:
                            continue
                    else:
                        break
                return acc
            """
        first, second = _cfg(source), _cfg(source)
        shape = lambda cfg: [(b.bid, b.succs, b.preds) for b in cfg.blocks]
        assert shape(first) == shape(second)
        assert first.rpo() == second.rpo()
        assert first.rpo()[0] == first.entry


# ----------------------------------------------------------------------
# Event linearisation
# ----------------------------------------------------------------------


class TestEvents:
    def test_assign_reads_value_before_storing_target(self):
        events = _events("x = y + z\n")
        assert [(e.kind, e.name) for e in events] == [
            ("load", "y"), ("load", "z"), ("store", "x"),
        ]

    def test_subscript_store_loads_receiver_as_target(self):
        events = _events("self.jobs[key] = job\n")
        assert [(e.kind, e.name, e.role) for e in events] == [
            ("load", "job", "value"),
            ("load", "self", "target"),
            ("load", "self.jobs", "target"),
            ("load", "key", "value"),
            ("store", "self.jobs", "value"),
        ]

    def test_attribute_store_emits_prefix_loads_then_store(self):
        events = _events("self.state.phase = nxt\n")
        kinds = [(e.kind, e.name, e.role) for e in events]
        assert ("load", "self.state", "target") in kinds
        assert kinds[-1] == ("store", "self.state.phase", "value")

    def test_augassign_reads_target_as_value(self):
        events = _events("self.count += 1\n")
        loads = [e for e in events if e.kind == "load"]
        # The read half of += is a genuine observation, not navigation.
        assert any(
            e.name == "self.count" and e.role == "value" for e in loads
        )
        assert events[-1].kind == "store"
        assert events[-1].name == "self.count"

    def test_mutating_method_call_stores_receiver(self):
        events = _events("self.queue.pop()\n")
        kinds = [(e.kind, e.name) for e in events]
        assert ("store", "self.queue") in kinds
        assert kinds[-1] == ("call", None)
        # The store lands before the call event, after the loads.
        assert kinds.index(("store", "self.queue")) > kinds.index(
            ("load", "self.queue")
        )

    def test_await_event_follows_awaited_call(self):
        stmt = ast.parse("async def f():\n    x = await fetch()\n").body[0]
        events = list(iter_events(stmt.body[0]))
        kinds = [e.kind for e in events]
        assert kinds == ["load", "call", "await", "store"]

    def test_lambda_bodies_are_deferred(self):
        events = _events("f = lambda: secret\n")
        assert [(e.kind, e.name) for e in events] == [("store", "f")]

    def test_comprehension_only_evaluates_first_iterable(self):
        events = _events("r = [g(i) for i in items]\n")
        assert [(e.kind, e.name) for e in events] == [
            ("load", "items"), ("store", "r"),
        ]

    def test_dotted_chain(self):
        expr = ast.parse("self.jobs.active\n").body[0].value
        assert dotted_chain(expr) == "self.jobs.active"
        call_root = ast.parse("get().attr\n").body[0].value
        assert dotted_chain(call_root) is None


# ----------------------------------------------------------------------
# Forward solver + reaching definitions
# ----------------------------------------------------------------------


class TestReachingDefs:
    def test_branch_join_unions_definitions(self):
        func = _func(
            """
            def f(flag):
                if flag:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        cfg = build_cfg(func)
        defs = _defs_at(cfg, func, cfg.exit, "a")
        assert {d.lineno for d in defs} == {4, 6}
        assert {d.kind for d in defs} == {"assign"}

    def test_straight_line_rebind_is_a_strong_update(self):
        func = _func(
            """
            def f():
                x = 1
                x = 2
                return x
            """
        )
        cfg = build_cfg(func)
        defs = _defs_at(cfg, func, cfg.exit, "x")
        assert [d.lineno for d in defs] == [4]

    def test_loop_body_definition_reaches_header(self):
        func = _func(
            """
            def f(n):
                total = 0
                while n:
                    total = total + 1
                return total
            """
        )
        cfg = build_cfg(func)
        header = next(
            b.bid for b in cfg.blocks
            if any(isinstance(e, BranchTest) for e in b.elements)
        )
        defs = _defs_at(cfg, func, header, "total")
        # Fixpoint: both the initial binding and the loop-carried one.
        assert {d.lineno for d in defs} == {3, 5}

    def test_parameters_seed_the_initial_state(self):
        func = _func(
            """
            def f(a, b, *rest, key=None, **extra):
                return a
            """
        )
        cfg = build_cfg(func)
        in_states = solve_forward(cfg, ReachingDefs(func))
        state = in_states[cfg.entry]
        for name in ("a", "b", "rest", "key", "extra"):
            (definition,) = state[name]
            assert definition.kind == "param"

    def test_try_body_definitions_reach_the_handler(self):
        func = _func(
            """
            def f(flag):
                x = 0
                try:
                    x = 1
                    if flag:
                        x = 2
                except ValueError:
                    seen = x
                return x
            """
        )
        cfg = build_cfg(func)
        handler = _block_with_store(cfg, "seen")
        defs = _defs_at(cfg, func, handler, "x")
        assert {d.lineno for d in defs} >= {5, 7}

    def test_walrus_binding_is_a_definition(self):
        func = _func(
            """
            def f(items):
                if (n := len(items)) > 3:
                    return n
                return 0
            """
        )
        cfg = build_cfg(func)
        in_states = solve_forward(cfg, ReachingDefs(func))
        then_block = cfg.block(cfg.entry).succs[0]
        (definition,) = in_states[then_block]["n"]
        assert definition.kind == "assign"

    def test_definitions_carry_their_bound_value(self):
        func = _func(
            """
            def f():
                pool = spawn_pool(2)
                return pool
            """
        )
        cfg = build_cfg(func)
        defs = _defs_at(cfg, func, cfg.exit, "pool")
        (definition,) = defs
        assert isinstance(definition.value, ast.Call)
        assert definition.value.func.id == "spawn_pool"

    def test_solver_is_deterministic(self):
        func = _func(
            """
            def f(xs):
                acc = 0
                for x in xs:
                    if x:
                        acc = acc + x
                    else:
                        acc = 0
                return acc
            """
        )
        cfg = build_cfg(func)
        first = solve_forward(cfg, ReachingDefs(func))
        second = solve_forward(cfg, ReachingDefs(func))
        assert first == second


# ----------------------------------------------------------------------
# Project index / call graph
# ----------------------------------------------------------------------


def _write_project(tmp_path):
    pkg = tmp_path / "src" / "pkg"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "a.py").write_text(textwrap.dedent(
        """
        def helper(x):
            return x + 1


        square = lambda x: x * x
        """
    ))
    (pkg / "b.py").write_text(textwrap.dedent(
        """
        from .a import helper as h


        class C:
            def m(self, v):
                return h(v)

            def chain(self, v):
                return self.m(v)
        """
    ))
    return [
        (pkg / "__init__.py", "src/pkg/__init__.py"),
        (pkg / "a.py", "src/pkg/a.py"),
        (pkg / "b.py", "src/pkg/b.py"),
    ]


class TestProjectIndex:
    def test_module_name_for(self):
        assert module_name_for("src/repro/api/cache.py") == "repro.api.cache"
        assert module_name_for("src/repro/__init__.py") == "repro"
        assert module_name_for("tests/test_x.py") == "tests.test_x"

    def test_relative_import_aliases_resolve_against_package(self):
        tree = ast.parse("from .a import helper as h\nfrom .. import core\n")
        aliases = collect_module_aliases(tree, "pkg.sub.b")
        assert aliases["h"] == "pkg.sub.a.helper"
        assert aliases["core"] == "pkg.core"

    def test_build_indexes_functions_methods_and_lambdas(self, tmp_path):
        index = ProjectIndex.build(tmp_path, _write_project(tmp_path))
        helper = index.functions["pkg.a.helper"]
        assert helper.kind == "function" and helper.params == ("x",)
        assert index.functions["pkg.a.square"].kind == "lambda"
        method = index.functions["pkg.b.C.m"]
        assert method.kind == "method" and method.params == ("self", "v")

    def test_call_edges_resolve_through_aliases_and_self(self, tmp_path):
        index = ProjectIndex.build(tmp_path, _write_project(tmp_path))
        edges = index.modules["src/pkg/b.py"].edges
        assert edges["pkg.b.C.m"] == ["pkg.a.helper"]
        assert edges["pkg.b.C.chain"] == ["pkg.b.C.m"]

    def test_resolve_name_orders_self_alias_local(self, tmp_path):
        index = ProjectIndex.build(tmp_path, _write_project(tmp_path))
        via_alias = index.resolve_name("pkg.b", "h")
        assert via_alias is not None
        assert via_alias.qualname == "pkg.a.helper"
        via_self = index.resolve_name("pkg.b", "self.m", current_class="C")
        assert via_self is not None and via_self.qualname == "pkg.b.C.m"
        assert index.resolve_name("pkg.b", "nope") is None

    def test_build_is_deterministic(self, tmp_path):
        files = _write_project(tmp_path)
        first = ProjectIndex.build(tmp_path, files)
        second = ProjectIndex.build(tmp_path, files)
        assert first.to_dict() == second.to_dict()

    def test_cache_round_trip_preserves_summaries(self, tmp_path):
        files = _write_project(tmp_path)
        cache = tmp_path / "callgraph.json"
        index = ProjectIndex.load_or_build(tmp_path, files, cache)
        index.set_summary("det-taint", "pkg.a.helper", {"returns": []})
        index.save(cache)

        reloaded = ProjectIndex.load_or_build(tmp_path, files, cache)
        assert reloaded.key == index.key
        assert reloaded.get_summary("det-taint", "pkg.a.helper") == {
            "returns": []
        }
        # Cache-loaded functions drop their AST; func_node re-parses.
        info = reloaded.functions["pkg.a.helper"]
        assert info.node is None
        node = reloaded.func_node(info)
        assert isinstance(node, ast.FunctionDef) and node.name == "helper"

    def test_source_change_invalidates_the_cache(self, tmp_path):
        files = _write_project(tmp_path)
        cache = tmp_path / "callgraph.json"
        stale = ProjectIndex.load_or_build(tmp_path, files, cache)
        (tmp_path / "src" / "pkg" / "a.py").write_text(
            "def helper(x, y):\n    return x + y\n"
        )
        fresh = ProjectIndex.load_or_build(tmp_path, files, cache)
        assert fresh.key != stale.key
        assert fresh.functions["pkg.a.helper"].params == ("x", "y")
        # The rebuilt index overwrote the cache file with the new key.
        assert json.loads(cache.read_text())["key"] == fresh.key

    def test_corrupt_cache_is_rebuilt_not_fatal(self, tmp_path):
        files = _write_project(tmp_path)
        cache = tmp_path / "callgraph.json"
        cache.write_text("not json {")
        index = ProjectIndex.load_or_build(tmp_path, files, cache)
        assert "pkg.a.helper" in index.functions
        assert json.loads(cache.read_text())["key"] == index.key
