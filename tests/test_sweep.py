"""Distributed sweep execution: self-scheduling chunks under leases.

Three layers of coverage:

* pure units — the worker-side :func:`chunk_size` math and the sweep
  spec enumeration (idempotent ids, validation);
* coordinator semantics against an in-process daemon (the
  ``running_service`` idiom from ``test_service.py``): claim/heartbeat/
  complete, lease expiry requeue, poison quarantine, duplicate and
  orphan completions resolving idempotently, journal replay of an open
  sweep across a coordinator restart, the ``/metrics`` sweep section,
  and the :class:`~repro.service.worker.SweepWorker` pull loop with the
  ``worker-vanish``/``slow-worker`` fault points;
* a real-process e2e (``test_distributed_sweep_survives_kills``):
  coordinator + two ``repro worker`` subprocesses, one worker SIGKILLed
  mid-sweep *and* the coordinator SIGKILL-and-restarted mid-sweep — the
  sweep must finish with results bit-identical to a local run.

Satellites covered here too: the client's resumable event stream
(``since=`` offsets under ``conn-reset``) and the retry policy's
``total_deadline`` conversion to :class:`ServiceUnavailable`.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import faults
from repro.api import CompilationRequest, Toolchain, content_hash
from repro.config import DEFAULT_CONFIG
from repro.errors import ServiceError, ServiceUnavailable
from repro.machine.machine import clustered_vliw
from repro.scheduling.fingerprint import schedule_fingerprint
from repro.service import RetryPolicy, ServiceClient
from repro.service.jobs import parse_compile_payload
from repro.service.sweep import (
    DEFAULT_LEASE_SECONDS,
    MAX_SWEEP_JOBS,
    chunk_size,
    encode_report,
    enumerate_sweep,
)
from repro.service.worker import SweepWorker
from repro.workloads import make_kernel

from .test_service import jsonable, running_service, wait_until

LADDER = {"search": "ladder"}

SPEC = {
    "kernels": ["fir_filter", "iir_biquad"],
    "clusters": [2, 4],
    "topologies": ["ring"],
    "config": LADDER,
}


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.disarm()
    yield
    faults.disarm()


def worker_for(client, **kwargs):
    kwargs.setdefault("idle_exit", 2.0)
    kwargs.setdefault("poll_interval", 0.05)
    return SweepWorker(f"{client.host}:{client.port}", **kwargs)


def local_reports(spec):
    """The same job space compiled through a local toolchain."""
    toolchain = Toolchain.default()
    plan = enumerate_sweep(spec, toolchain)
    reports = []
    for payload in plan.payloads:
        parsed = parse_compile_payload(payload)
        reports.append(toolchain.compile(parsed.request))
    return plan, reports


# ----------------------------------------------------------------------
# chunk_size: the worker-side self-scheduling math
# ----------------------------------------------------------------------


def test_chunk_size_decreases_with_remaining():
    sizes = [chunk_size(remaining, workers=2) for remaining in (256, 64, 16, 4, 1)]
    assert sizes == sorted(sizes, reverse=True)
    assert sizes[-1] == 1


def test_chunk_size_bounds():
    assert chunk_size(0, 4) == 0
    assert chunk_size(-3, 4) == 0
    assert chunk_size(10_000, 1, max_chunk=32) == 32
    assert chunk_size(3, 100, min_chunk=2) == 2
    # min_chunk is a floor even past remaining: over-asking is harmless
    # because the coordinator clamps the grant to its pending queue.
    assert chunk_size(1, 1, min_chunk=8) == 8
    assert chunk_size(5, 2, max_chunk=100) == 2  # share bounded by remaining


def test_chunk_size_scales_inversely_with_workers():
    assert chunk_size(100, 1, max_chunk=1000) > chunk_size(
        100, 10, max_chunk=1000
    )


# ----------------------------------------------------------------------
# Spec enumeration
# ----------------------------------------------------------------------


def test_enumerate_cross_product_and_idempotent_id():
    toolchain = Toolchain.default()
    plan = enumerate_sweep(SPEC, toolchain)
    assert len(plan.payloads) == 4  # 2 kernels x 2 cluster counts x 1 topo
    assert plan.id.startswith("sw-")
    assert plan.lease_seconds == DEFAULT_LEASE_SECONDS
    # Comma-string forms normalize to the same id (idempotent re-POST).
    same = enumerate_sweep(
        dict(SPEC, kernels="fir_filter,iir_biquad", topologies="ring"),
        toolchain,
    )
    assert same.id == plan.id
    different = enumerate_sweep(dict(SPEC, clusters=[2, 8]), toolchain)
    assert different.id != plan.id
    # Keys are the batch-cache content hashes of the enumerated jobs.
    parsed = parse_compile_payload(plan.payloads[0])
    assert plan.keys[0] == content_hash(
        parsed.request, pipeline=toolchain.pass_names
    )


def test_enumerate_rejects_bad_specs():
    toolchain = Toolchain.default()
    for bad in (
        [],  # not an object
        {},  # neither jobs nor kernels
        {"jobs": "nope"},
        {"jobs": []},
        {"kernels": ["fir_filter"], "lease": 0},
        {"kernels": ["fir_filter"], "lease": "soon"},
        {"kernels": ["fir_filter"], "max_requeues": -1},
        {"kernels": ["no_such_kernel"]},
    ):
        with pytest.raises(ServiceError):
            enumerate_sweep(bad, toolchain)
    too_many = {"jobs": [{"kernel": "daxpy"}] * (MAX_SWEEP_JOBS + 1)}
    with pytest.raises(ServiceError):
        enumerate_sweep(too_many, toolchain)


# ----------------------------------------------------------------------
# Coordinator semantics (in-process daemon)
# ----------------------------------------------------------------------


def test_sweep_submit_claim_complete_happy_path():
    with running_service() as (service, client, _loop):
        status = client.submit_sweep(SPEC)
        sweep_id = status["sweep"]
        assert status["state"] == "open" and status["total"] == 4
        assert client.submit_sweep(SPEC)["sweep"] == sweep_id  # idempotent

        stats = worker_for(client, name="wA").run()
        assert stats["jobs"] == 4 and stats["errors"] == 0

        final = client.sweep(sweep_id, jobs=True)
        assert final["state"] == "done"
        assert final["done"] == 4 and final["failed"] == 0
        # Per-job results carry the recomputed schedule fingerprints,
        # identical to a local toolchain run of the same payloads.
        _, reports = local_reports(SPEC)
        by_index = {job["index"]: job for job in final["jobs"]}
        for index, report in enumerate(reports):
            assert by_index[index]["fingerprint"] == jsonable(
                schedule_fingerprint(report.result)
            )


def test_sweep_heartbeat_extends_and_reports_lost_leases():
    with running_service() as (service, client, _loop):
        sweep_id = client.submit_sweep(dict(SPEC, lease=30.0))["sweep"]
        grant = client.sweep_claim(sweep_id, "wA", 2)
        beat = client.sweep_heartbeat(sweep_id, "wA", grant["chunk"])
        assert beat["ok"] is True
        # Wrong worker or unknown chunk: the lease is not held.
        assert (
            client.sweep_heartbeat(sweep_id, "wB", grant["chunk"])["ok"]
            is False
        )
        assert client.sweep_heartbeat(sweep_id, "wA", "c999")["ok"] is False


def test_partial_completion_requeues_the_unreported_jobs():
    with running_service() as (service, client, _loop):
        sweep_id = client.submit_sweep(SPEC)["sweep"]
        grant = client.sweep_claim(sweep_id, "wA", 4)
        assert len(grant["jobs"]) == 4
        job = grant["jobs"][0]
        report = Toolchain.default().compile(
            parse_compile_payload(job["payload"]).request
        )
        ack = client.sweep_complete(
            sweep_id,
            "wA",
            grant["chunk"],
            [{"index": job["index"], "key": job["key"],
              "report": encode_report(report)}],
        )
        assert ack["accepted"] == 1
        # The three granted-but-unreported jobs went back to pending.
        assert ack["remaining"] == 3
        status = client.sweep(sweep_id)
        assert status["done"] == 1 and status["pending"] == 3


def test_error_results_fail_jobs_without_failing_the_sweep():
    with running_service() as (service, client, _loop):
        sweep_id = client.submit_sweep(SPEC)["sweep"]
        grant = client.sweep_claim(sweep_id, "wA", 4)
        results = []
        for job in grant["jobs"]:
            if job["index"] == 0:
                results.append(
                    {"index": 0, "key": job["key"], "error": "II overflow"}
                )
            else:
                report = Toolchain.default().compile(
                    parse_compile_payload(job["payload"]).request
                )
                results.append(
                    {"index": job["index"], "key": job["key"],
                     "report": encode_report(report)}
                )
        client.sweep_complete(sweep_id, "wA", grant["chunk"], results)
        final = client.sweep(sweep_id, jobs=True)
        # Deterministic per-job failures do not block sweep completion.
        assert final["state"] == "done"
        assert final["done"] == 3 and final["failed"] == 1
        failed = [j for j in final["jobs"] if j["state"] == "failed"]
        assert failed[0]["index"] == 0 and "II overflow" in failed[0]["error"]


def test_duplicate_and_orphan_completions_resolve_idempotently():
    with running_service() as (service, client, _loop):
        sweep_id = client.submit_sweep(
            {"jobs": [{"kernel": "daxpy", "clusters": 2, "config": LADDER}]}
        )["sweep"]
        grant = client.sweep_claim(sweep_id, "wA", 1)
        job = grant["jobs"][0]
        report = Toolchain.default().compile(
            parse_compile_payload(job["payload"]).request
        )
        entry = {"index": job["index"], "key": job["key"],
                 "report": encode_report(report)}
        first = client.sweep_complete(sweep_id, "wA", grant["chunk"], [entry])
        assert first["accepted"] == 1 and first["orphan"] is False
        # A second completion for the same (now forgotten) chunk — the
        # lease-steal aftermath — is an orphan full of duplicates.
        second = client.sweep_complete(sweep_id, "wB", grant["chunk"], [entry])
        assert second["accepted"] == 0
        assert second["duplicates"] == 1 and second["orphan"] is True
        assert client.sweep(sweep_id)["done"] == 1
        counters = client.metrics()["sweep"]["completions"]
        assert counters["duplicate"] == 1 and counters["orphan"] == 1


def test_invalid_results_are_rejected_and_counted():
    with running_service() as (service, client, _loop):
        sweep_id = client.submit_sweep(SPEC)["sweep"]
        grant = client.sweep_claim(sweep_id, "wA", 1)
        job = grant["jobs"][0]
        ack = client.sweep_complete(
            sweep_id,
            "wA",
            grant["chunk"],
            [
                {"index": job["index"], "key": job["key"],
                 "report": "bm90IGEgcGlja2xl"},  # undecodable blob
                {"index": 999, "key": "whatever", "error": "out of range"},
            ],
        )
        assert ack["accepted"] == 0 and ack["invalid"] == 2
        # The job whose result was garbage went straight back to pending.
        assert client.sweep(sweep_id)["pending"] == 4


def test_lease_expiry_requeues_and_eventually_quarantines():
    with running_service() as (service, client, _loop):
        sweep_id = client.submit_sweep(
            {
                "jobs": [{"kernel": "daxpy", "clusters": 2, "config": LADDER}],
                "lease": 0.2,
                "max_requeues": 1,
            }
        )["sweep"]
        # Claim and never heartbeat: expiry 1 requeues...
        assert client.sweep_claim(sweep_id, "ghost", 1)["chunk"]
        wait_until(
            lambda: client.sweep(sweep_id)["pending"] == 1,
            what="first lease expiry requeue",
        )
        # ...and expiry 2 exceeds max_requeues: poison quarantine, and
        # with every job terminal the sweep closes out as failed.
        assert client.sweep_claim(sweep_id, "ghost", 1)["chunk"]
        wait_until(
            lambda: client.sweep(sweep_id)["state"] == "failed",
            what="quarantine closing the sweep",
        )
        final = client.sweep(sweep_id, jobs=True)
        assert "quarantined" in final["jobs"][0]["error"]
        chunks = client.metrics()["sweep"]["chunks"]
        assert chunks["lease_expiries"] == 2 and chunks["requeued"] == 2


def test_metrics_sweep_section_shape():
    with running_service() as (service, client, _loop):
        assert client.metrics()["sweep"] is None  # no sweeps yet
        sweep_id = client.submit_sweep(SPEC)["sweep"]
        client.sweep_claim(sweep_id, "wA", 2)
        section = client.metrics()["sweep"]
        assert section["sweeps"] == {"open": 1, "done": 0, "failed": 0}
        assert section["jobs"]["leased"] == 2
        assert section["chunks"]["outstanding"] == 1
        worker = section["workers"]["wA"]
        assert worker["claims"] == 1
        assert worker["heartbeat_age_seconds"] >= 0


def test_sweep_rejected_while_draining():
    with running_service() as (service, client, loop):
        loop.call_soon_threadsafe(service.request_drain)
        wait_until(
            lambda: client.healthz()["status"] == "draining", what="drain"
        )
        with pytest.raises(ServiceError):
            client.submit_sweep(SPEC)


def test_coordinator_restart_replays_open_sweep(tmp_path):
    journal = tmp_path / "journal.jsonl"
    cache = tmp_path / "cache"
    spec = dict(SPEC, lease=5.0)
    with running_service(journal=str(journal), disk_cache=str(cache)) as (
        service, client, _loop,
    ):
        sweep_id = client.submit_sweep(spec)["sweep"]
        grant = client.sweep_claim(sweep_id, "wA", 1)
        job = grant["jobs"][0]
        report = Toolchain.default().compile(
            parse_compile_payload(job["payload"]).request
        )
        client.sweep_complete(
            sweep_id, "wA", grant["chunk"],
            [{"index": job["index"], "key": job["key"],
              "report": encode_report(report)}],
        )
    # "Crash": the context manager closed the daemon with the sweep
    # open.  A new daemon on the same journal + cache must bring the
    # sweep back: the completed job prefilled from the durable cache,
    # the rest re-advertised.
    with running_service(journal=str(journal), disk_cache=str(cache)) as (
        service, client, _loop,
    ):
        status = client.sweep(sweep_id)
        assert status["recovered"] is True and status["state"] == "open"
        assert status["done"] == 1 and status["remaining"] == 3
        assert client.metrics()["sweep"]["recovered_sweeps"] == 1
        stats = worker_for(client, name="wB").run()
        assert stats["jobs"] == 3
        assert client.sweep(sweep_id)["state"] == "done"
    # Third daemon: the terminal sweep compacts away, nothing reopens.
    with running_service(journal=str(journal), disk_cache=str(cache)) as (
        service, client, _loop,
    ):
        assert client.sweeps()["sweeps"] == []


# ----------------------------------------------------------------------
# The pull worker (fault points included)
# ----------------------------------------------------------------------


def test_worker_vanish_fault_then_honest_worker_finishes():
    with running_service() as (service, client, _loop):
        sweep_id = client.submit_sweep(dict(SPEC, lease=0.3))["sweep"]
        faults.install(faults.FaultPlan.from_spec("worker-vanish:times=1"))
        ghost = worker_for(client, name="ghost", idle_exit=5.0).run()
        faults.disarm()
        # The ghost claimed one chunk and disappeared without a single
        # heartbeat or completion.
        assert ghost["vanished"] == 1 and ghost["jobs"] == 0
        wait_until(
            lambda: client.metrics()["sweep"]["chunks"]["lease_expiries"] >= 1,
            what="ghost lease expiry",
        )
        honest = worker_for(client, name="honest").run()
        assert honest["jobs"] == 4
        assert client.sweep(sweep_id)["state"] == "done"


def test_slow_worker_fault_keeps_lease_alive_via_heartbeats():
    with running_service() as (service, client, _loop):
        sweep_id = client.submit_sweep(
            {
                "jobs": [{"kernel": "daxpy", "clusters": 2, "config": LADDER}],
                "lease": 0.5,
            }
        )["sweep"]
        # Straggler: 0.9s of sleep per job, nearly 2x the lease — only
        # the heartbeat thread keeps the chunk from being stolen.
        faults.install(
            faults.FaultPlan.from_spec("slow-worker:times=1:delay=0.9")
        )
        stats = worker_for(client, name="slow", idle_exit=3.0).run()
        assert stats["jobs"] == 1 and stats["lease_lost"] == 0
        final = client.sweep(sweep_id)
        assert final["state"] == "done"
        assert client.metrics()["sweep"]["chunks"]["lease_expiries"] == 0


def test_worker_uses_local_cache_before_compiling(tmp_path):
    cache = tmp_path / "cache"
    with running_service(disk_cache=str(cache)) as (service, client, _loop):
        sweep_id = client.submit_sweep(SPEC)["sweep"]
        first = worker_for(client, name="wA", cache=str(cache)).run()
        assert first["compiled"] == 4
    # Same sweep against a fresh daemon sharing the cache directory: the
    # planner prefills every job from disk and no worker runs at all.
    with running_service(disk_cache=str(cache)) as (service, client, _loop):
        status = client.submit_sweep(SPEC)
        assert status["state"] == "done" and status["done"] == 4
        assert (
            client.metrics()["sweep"]["completions"]["cache_prefills"] == 4
        )


def test_batch_compiler_coordinator_merge_path(tmp_path):
    from repro.api.batch import BatchCompiler

    requests = [
        CompilationRequest(
            loop=make_kernel("fir_filter"),
            machine=clustered_vliw(k, topology="ring"),
            config=DEFAULT_CONFIG.with_(search="ladder"),
        )
        for k in (2, 4)
    ]
    local = [Toolchain.default().compile(request) for request in requests]
    with running_service() as (service, client, _loop):
        address = f"{client.host}:{client.port}"
        compiler = BatchCompiler(
            cache=str(tmp_path / "cache"), coordinator=address
        )
        worker = worker_for(client, name="wA")
        import threading

        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        reports = compiler.compile_many(requests)
        thread.join(timeout=30)
    assert [r.result.ii for r in reports] == [r.result.ii for r in local]
    for remote, reference in zip(reports, local):
        assert schedule_fingerprint(remote.result) == schedule_fingerprint(
            reference.result
        )
    # The merge path also populated the local cache: a second batch run
    # without any coordinator is served entirely from disk.
    again = BatchCompiler(cache=str(tmp_path / "cache")).compile_many(requests)
    assert all(r.cache_hit for r in again)


# ----------------------------------------------------------------------
# Satellites: resumable event stream, bounded retry deadline
# ----------------------------------------------------------------------


def test_event_stream_resumes_after_conn_reset():
    with running_service() as (service, client, _loop):
        receipt = client.compile(
            {"kernel": "fir_filter", "clusters": 2, "config": LADDER},
            wait=False,
        )
        job_id = receipt["job"]
        wait_until(
            lambda: client.job(job_id)["status"] == "done", what="job done"
        )
        baseline = list(client.events(job_id))
        assert baseline[-1]["event"] == "done"
        # Sever the stream on its 1st and 2nd delivery attempts: the
        # iterator must reconnect with since=<consumed> and still yield
        # every event exactly once.
        faults.install(faults.FaultPlan.from_spec("conn-reset:times=1+2"))
        resumed = list(client.events(job_id))
        faults.disarm()
        assert resumed == baseline
        assert client.retries["transport"] >= 1


def test_event_stream_since_offset():
    with running_service() as (service, client, _loop):
        receipt = client.compile(
            {"kernel": "daxpy", "clusters": 2, "config": LADDER}, wait=False
        )
        job_id = receipt["job"]
        wait_until(
            lambda: client.job(job_id)["status"] == "done", what="job done"
        )
        baseline = list(client.events(job_id))
        assert list(client.events(job_id, since=2)) == baseline[2:]
        assert list(client.events(job_id, since=len(baseline))) == []


def test_total_deadline_converts_to_service_unavailable():
    # Nothing listens on port 1: every attempt is connection-refused,
    # and the tight deadline trips before the backoff sleep.
    client = ServiceClient(
        "127.0.0.1:1",
        policy=RetryPolicy(
            max_attempts=50,
            connect_timeout=0.2,
            backoff_base=0.5,
            jitter=0.0,
            total_deadline=0.4,
        ),
    )
    started = time.monotonic()
    with pytest.raises(ServiceUnavailable):
        client.healthz()
    assert time.monotonic() - started < 5.0


def test_total_deadline_none_keeps_old_unbounded_behavior():
    client = ServiceClient(
        "127.0.0.1:1",
        policy=RetryPolicy(
            max_attempts=2,
            connect_timeout=0.2,
            backoff_base=0.01,
            total_deadline=None,
        ),
    )
    from repro.service import TransportError

    with pytest.raises(TransportError):
        client.healthz()


# ----------------------------------------------------------------------
# The acceptance e2e: real processes, real SIGKILLs
# ----------------------------------------------------------------------

E2E_SPEC = {
    "kernels": ["fir_filter", "daxpy", "vector_add", "dot_product"],
    "clusters": [2, 4],
    "topologies": ["ring"],
    "config": LADDER,
    "lease": 1.5,
    "max_requeues": 5,
}


def _spawn(args, **kwargs):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    kwargs.setdefault("stdout", subprocess.DEVNULL)
    kwargs.setdefault("stderr", subprocess.DEVNULL)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args], env=env, **kwargs
    )


def _start_coordinator(tmp_path, port=0):
    port_file = tmp_path / "port"
    if port_file.exists():
        port_file.unlink()
    proc = _spawn(
        [
            "serve",
            "--port", str(port),
            "--workers", "0",
            "--journal", str(tmp_path / "journal.jsonl"),
            "--cache", str(tmp_path / "coordinator-cache"),
            "--port-file", str(port_file),
        ]
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            return proc, port_file.read_text().strip()
        if proc.poll() is not None:
            raise AssertionError(
                f"coordinator exited early with {proc.returncode}"
            )
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("coordinator never wrote its port file")


def _start_worker(address, name, fault=None):
    args = [
        "worker",
        "--coordinator", address,
        "--name", name,
        "--poll", "0.1",
        "--idle-exit", "30",
        "--max-chunk", "2",
    ]
    if fault:
        args += ["--faults", fault]
    return _spawn(args)


def test_distributed_sweep_survives_kills(tmp_path):
    """SIGKILL a worker mid-sweep AND SIGKILL-restart the coordinator.

    The sweep must still complete, and its merged per-job fingerprints
    must be bit-identical to a local single-host compile of the same
    job space.
    """
    procs = []
    try:
        coordinator, address = _start_coordinator(tmp_path)
        procs.append(coordinator)
        with ServiceClient(address, timeout=30) as client:
            sweep_id = client.submit_sweep(E2E_SPEC)["sweep"]

        # Two workers; the slow-worker fault stretches their per-job
        # time so the kill windows below are guaranteed to land
        # mid-sweep on any machine.
        victim = _start_worker(
            address, "victim", fault="slow-worker:every=1:delay=0.4"
        )
        survivor = _start_worker(
            address, "survivor", fault="slow-worker:every=1:delay=0.4"
        )
        procs += [victim, survivor]

        # Wait until the victim holds work, then SIGKILL it mid-chunk.
        def victim_engaged():
            with ServiceClient(address, timeout=30) as client:
                section = client.metrics()["sweep"]
                return (
                    section is not None
                    and section["workers"].get("victim", {}).get("claims", 0)
                    > 0
                )

        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and not victim_engaged():
            time.sleep(0.1)
        assert victim_engaged(), "victim never claimed a chunk"
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=30)

        # Now SIGKILL the coordinator mid-sweep and restart it on the
        # same journal + cache.  The surviving worker rides out the
        # outage (coordinator_unreachable polls) and finishes the sweep
        # against the replayed ledger.
        os.kill(coordinator.pid, signal.SIGKILL)
        coordinator.wait(timeout=30)
        # The surviving worker keeps polling the old address, so the
        # restart must rebind the same port (explicitly this time —
        # the first launch used an ephemeral one).
        port = int(address.rsplit(":", 1)[1])
        coordinator, address2 = _start_coordinator(tmp_path, port=port)
        procs.append(coordinator)
        assert address2 == address, "coordinator must rebind the same port"

        with ServiceClient(address, timeout=30) as client:
            deadline = time.monotonic() + 180
            while time.monotonic() < deadline:
                status = client.sweep(sweep_id)
                if status["state"] != "open":
                    break
                time.sleep(0.25)
            assert status["state"] == "done", status
            assert status.get("recovered") is True
            final = client.sweep(sweep_id, jobs=True)
            section = client.metrics()["sweep"]

        # Bit-identity: every job's fingerprint equals the local one.
        _, reports = local_reports(E2E_SPEC)
        by_index = {job["index"]: job for job in final["jobs"]}
        for index, report in enumerate(reports):
            assert by_index[index]["fingerprint"] == jsonable(
                schedule_fingerprint(report.result)
            ), f"fingerprint mismatch on job {index}"
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
