"""Tests for the linear-array topology extension."""

import pytest

from repro.errors import MachineError
from repro.ir.transforms import single_use_ddg
from repro.machine import LinearTopology, clustered_vliw
from repro.scheduling import DistributedModuloScheduler, validate_schedule
from repro.workloads import make_kernel

from .conftest import build_stream_loop


class TestDistances:
    def test_no_wraparound(self):
        linear = LinearTopology(8)
        assert linear.distance(0, 7) == 7
        assert linear.distance(3, 5) == 2

    def test_end_clusters_have_one_neighbor(self):
        linear = LinearTopology(5)
        assert linear.neighbors(0) == (1,)
        assert linear.neighbors(4) == (3,)
        assert linear.neighbors(2) == (1, 3)

    def test_single_path_between_pairs(self):
        linear = LinearTopology(6)
        paths = linear.paths(1, 4)
        assert len(paths) == 1
        assert paths[0].clusters == (1, 2, 3, 4)
        assert linear.paths(4, 1)[0].clusters == (4, 3, 2, 1)

    def test_trivial_path(self):
        linear = LinearTopology(4)
        assert linear.paths(2, 2)[0].clusters == (2,)

    def test_wrong_direction_rejected(self):
        linear = LinearTopology(4)
        with pytest.raises(MachineError):
            linear.path(0, 3, -1)

    def test_directed_pairs_exclude_wraparound(self):
        linear = LinearTopology(4)
        machine = clustered_vliw(4, topology="linear")
        ids = machine.cqrf_ids()
        writers_readers = {(c.writer, c.reader) for c in ids}
        assert (0, 3) not in writers_readers
        assert (3, 0) not in writers_readers
        assert (0, 1) in writers_readers


class TestEndpoints:
    """Edge cases at the ends of the array (no wraparound shortcuts)."""

    def test_single_cluster_has_no_neighbors(self):
        linear = LinearTopology(1)
        assert linear.neighbors(0) == ()
        assert linear.distance(0, 0) == 0
        assert linear.paths(0, 0)[0].clusters == (0,)

    def test_two_cluster_array(self):
        linear = LinearTopology(2)
        assert linear.neighbors(0) == (1,)
        assert linear.neighbors(1) == (0,)
        assert len(linear.paths(0, 1)) == 1

    def test_endpoint_distance_spans_whole_array(self):
        linear = LinearTopology(7)
        assert linear.distance(0, 6) == 6
        assert linear.distance(6, 0) == 6

    def test_endpoint_to_endpoint_path_touches_every_cluster(self):
        linear = LinearTopology(5)
        (path,) = linear.paths(0, 4)
        assert path.clusters == (0, 1, 2, 3, 4)
        assert path.intermediates == (1, 2, 3)
        assert path.n_moves == 3

    def test_out_of_range_cluster_rejected(self):
        linear = LinearTopology(3)
        with pytest.raises(MachineError):
            linear.distance(0, 3)
        with pytest.raises(MachineError):
            linear.neighbors(-1)

    def test_invalid_direction_values_rejected(self):
        linear = LinearTopology(4)
        with pytest.raises(MachineError):
            linear.path(0, 2, 2)


class TestMachines:
    def test_topology_kind_selects_class(self):
        ring = clustered_vliw(6)
        linear = clustered_vliw(6, topology="linear")
        assert ring.topology.distance(0, 5) == 1
        assert linear.topology.distance(0, 5) == 5

    def test_unknown_topology_rejected(self):
        with pytest.raises(MachineError):
            clustered_vliw(4, topology="hypercube")

    def test_name_mentions_topology(self):
        assert "linear" in clustered_vliw(4, topology="linear").name


class TestScheduling:
    @pytest.mark.parametrize("clusters", [2, 4, 6])
    def test_dms_on_linear_array(self, clusters):
        machine = clustered_vliw(clusters, topology="linear")
        loop = build_stream_loop()
        result = DistributedModuloScheduler(machine).schedule(loop.ddg.copy())
        validate_schedule(result)

    def test_chains_on_linear_array(self):
        machine = clustered_vliw(6, topology="linear")
        loop = make_kernel("fir_filter", taps=8)
        result = DistributedModuloScheduler(machine).schedule(
            single_use_ddg(loop.ddg)
        )
        validate_schedule(result)
        # Every flow edge must satisfy the *linear* adjacency.
        for edge in result.ddg.edges():
            if edge.is_flow and edge.src != edge.dst:
                src = result.placements[edge.src].cluster
                dst = result.placements[edge.dst].cluster
                assert abs(src - dst) <= 1
