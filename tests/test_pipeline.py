"""Tests for the end-to-end compile pipeline and unroll policy."""

import pytest

from repro.config import SchedulerConfig
from repro.errors import SchedulingError
from repro.ir import DEFAULT_LATENCIES
from repro.ir.transforms import unroll_loop
from repro.machine import clustered_vliw, unclustered_vliw
from repro.scheduling import validate_schedule
from repro.scheduling.pipeline import (
    choose_unroll_factor,
    compile_loop,
)
from repro.workloads import make_kernel

from .conftest import build_reduction_loop, build_stream_loop


class TestUnrollPolicy:
    def test_narrow_machine_needs_no_unroll(self):
        loop = build_stream_loop()
        assert choose_unroll_factor(loop.ddg, 1) == 1

    def test_wide_machine_unrolls_small_loops(self):
        loop = build_stream_loop()  # 3 mem ops
        u = choose_unroll_factor(loop.ddg, 6)
        # 3 mem ops on 6 L/S units: needs at least 2 copies of the body
        # to reach full throughput.
        assert u >= 2

    def test_recurrence_limits_unrolling(self):
        # A divide recurrence (RecMII 8) dominates: unrolling cannot help
        # beyond matching resource and recurrence bounds.
        from repro.ir import LoopBuilder

        b = LoopBuilder("divrec")
        s = b.placeholder()
        nxt = b.div(b.carried(s, 1), "r")
        b.bind(s, nxt)
        loop = b.build()
        u = choose_unroll_factor(loop.ddg, 8)
        assert u == 1

    def test_projected_ii_not_worse_than_unity(self):
        for k in (1, 2, 4, 8, 10):
            loop = build_reduction_loop()
            u = choose_unroll_factor(loop.ddg, k)
            assert 1 <= u <= SchedulerConfig().unroll_cap

    def test_rejects_bad_k(self):
        loop = build_stream_loop()
        with pytest.raises(SchedulingError):
            choose_unroll_factor(loop.ddg, 0)


class TestCompileLoop:
    def test_unclustered_uses_ims(self):
        compiled = compile_loop(build_stream_loop(), unclustered_vliw(2))
        assert compiled.result.scheduler == "ims"
        validate_schedule(compiled.result)

    def test_clustered_uses_dms(self):
        compiled = compile_loop(build_stream_loop(), clustered_vliw(4))
        assert compiled.result.scheduler == "dms"
        validate_schedule(compiled.result)
        assert compiled.allocation is not None
        assert compiled.allocation.fits

    def test_single_cluster_machine_skips_single_use(self):
        loop = make_kernel("stencil5")  # fan-out 5 on the load
        compiled = compile_loop(loop, clustered_vliw(1))
        assert compiled.result.n_copies == 0

    def test_clustered_machine_gets_copies(self):
        loop = make_kernel("stencil5")
        compiled = compile_loop(loop, clustered_vliw(3))
        assert compiled.result.n_copies > 0
        validate_schedule(compiled.result)

    def test_explicit_unroll_respected(self):
        compiled = compile_loop(
            build_stream_loop(), unclustered_vliw(2), unroll=3
        )
        assert compiled.unroll_factor == 3
        assert len(compiled.result.ddg) == 3 * build_stream_loop().n_ops

    def test_shared_unroll_between_pair(self):
        loop = build_stream_loop()
        a = compile_loop(loop, unclustered_vliw(4), equivalent_k=4)
        b = compile_loop(loop, clustered_vliw(4), equivalent_k=4)
        assert a.unroll_factor == b.unroll_factor

    def test_already_unrolled_rejected(self):
        loop = unroll_loop(build_stream_loop(), 2)
        with pytest.raises(SchedulingError):
            compile_loop(loop, unclustered_vliw(1))


class TestMetrics:
    def test_cycle_model(self):
        compiled = compile_loop(
            build_stream_loop("s", trip_count=100), unclustered_vliw(1), unroll=1
        )
        result = compiled.result
        expected = (100 + result.stage_count - 1) * result.ii
        assert compiled.cycles == expected

    def test_kernel_iterations_ceiling(self):
        loop = build_stream_loop("s", trip_count=100)
        compiled = compile_loop(loop, unclustered_vliw(2), unroll=3)
        assert compiled.kernel_iterations == 34

    def test_ipc_bounded_by_machine_width(self):
        compiled = compile_loop(build_stream_loop(), unclustered_vliw(2))
        assert 0 < compiled.ipc <= 6

    def test_useful_instances_exclude_copies(self):
        loop = make_kernel("stencil5", trip_count=64)
        compiled = compile_loop(loop, clustered_vliw(4), equivalent_k=4)
        useful_per_iter = compiled.result.n_useful_ops
        assert compiled.useful_instances == useful_per_iter * compiled.kernel_iterations
