"""Tests for queue allocation."""

import pytest

from repro.errors import AllocationError
from repro.ir import DEFAULT_LATENCIES
from repro.ir.transforms import single_use_ddg
from repro.machine import ClusterSpec, QueueFileSpec, clustered_vliw
from repro.machine.cqrf import CQRFId, LRFId
from repro.registers import allocate_queues
from repro.scheduling import DistributedModuloScheduler

from .conftest import build_fanout_loop, build_stream_loop


def allocation_for(loop, clusters=4, cluster_spec=None, transform=False):
    machine = clustered_vliw(clusters, cluster=cluster_spec or ClusterSpec())
    ddg = single_use_ddg(loop.ddg) if transform else loop.ddg.copy()
    result = DistributedModuloScheduler(machine).schedule(ddg)
    return allocate_queues(result), result


class TestAllocation:
    def test_every_lifetime_assigned(self):
        allocation, result = allocation_for(build_stream_loop())
        refs = sum(
            len(op.internal_srcs) for op in result.ddg.operations()
        )
        assert len(allocation.assignments) == refs

    def test_queue_indexes_unique_per_file(self):
        allocation, _ = allocation_for(build_fanout_loop(6), transform=True)
        seen = set()
        for assignment in allocation.assignments:
            key = (str(assignment.file_id), assignment.queue_index)
            assert key not in seen
            seen.add(key)

    def test_fits_generous_hardware(self):
        allocation, _ = allocation_for(build_stream_loop())
        assert allocation.fits
        allocation.raise_if_overflow()

    def test_overflow_detected(self):
        tiny = ClusterSpec(lrf=QueueFileSpec(n_queues=1, queue_depth=1))
        machine = clustered_vliw(1, cluster=tiny)
        result = DistributedModuloScheduler(machine).schedule(
            build_stream_loop().ddg.copy()
        )
        allocation = allocate_queues(result)
        assert not allocation.fits
        with pytest.raises(AllocationError):
            allocation.raise_if_overflow()

    def test_file_usage_totals(self):
        allocation, _ = allocation_for(build_fanout_loop(8), transform=True)
        for usage in allocation.files:
            assert usage.queues_used >= 1
            assert usage.max_depth >= 1
            assert usage.total_values >= usage.queues_used

    def test_lookup_by_lifetime(self):
        allocation, result = allocation_for(build_stream_loop())
        table = allocation.by_lifetime()
        for assignment in allocation.assignments:
            lt = assignment.lifetime
            assert table[(lt.producer, lt.consumer, lt.operand_index)] == assignment

    def test_label_format(self):
        allocation, _ = allocation_for(build_stream_loop())
        labels = {a.label for a in allocation.assignments}
        assert all(":q" in label for label in labels)


class TestCrossClusterRouting:
    def test_cqrf_files_used_only_for_adjacent_pairs(self):
        allocation, result = allocation_for(build_fanout_loop(8), clusters=6, transform=True)
        topology = result.machine.topology
        for usage in allocation.files:
            if isinstance(usage.file_id, CQRFId):
                assert topology.adjacent(usage.file_id.writer, usage.file_id.reader)

    def test_total_queue_accounting(self):
        allocation, _ = allocation_for(build_stream_loop())
        assert allocation.total_queues == sum(
            f.queues_used for f in allocation.files
        )
        assert allocation.max_queue_depth == max(
            f.max_depth for f in allocation.files
        )
