"""Tests for DMS fundamentals: strategy 1, validity, parity with IMS."""

import pytest

from repro.config import SchedulerConfig
from repro.errors import SchedulingError
from repro.ir import DEFAULT_LATENCIES, LoopBuilder, OpCode
from repro.ir.transforms import single_use_ddg
from repro.machine import clustered_vliw, unclustered_vliw
from repro.scheduling import (
    DistributedModuloScheduler,
    IterativeModuloScheduler,
    validate_schedule,
)

from .conftest import build_fanout_loop, build_reduction_loop, build_stream_loop


def dms_schedule(ddg, clusters=4, config=None):
    scheduler = DistributedModuloScheduler(
        clustered_vliw(clusters), DEFAULT_LATENCIES, config or SchedulerConfig()
    )
    return scheduler.schedule(ddg.copy())


class TestValidity:
    @pytest.mark.parametrize("clusters", [1, 2, 3, 4, 6, 8, 10])
    def test_stream_schedules_on_any_ring(self, clusters):
        result = dms_schedule(build_stream_loop().ddg, clusters)
        validate_schedule(result)

    @pytest.mark.parametrize("clusters", [2, 4, 8])
    def test_reduction_schedules(self, clusters):
        result = dms_schedule(build_reduction_loop().ddg, clusters)
        validate_schedule(result)
        assert result.ii >= result.rec_mii

    def test_fanout_graph_requires_single_use(self):
        loop = build_fanout_loop(consumers=5)
        with pytest.raises(SchedulingError):
            dms_schedule(loop.ddg, clusters=4)

    def test_fanout_graph_after_transform(self):
        loop = build_fanout_loop(consumers=5)
        result = dms_schedule(single_use_ddg(loop.ddg), clusters=4)
        validate_schedule(result)

    def test_single_cluster_accepts_fanout(self):
        # Fan-out only matters with inter-cluster queues.
        loop = build_fanout_loop(consumers=5)
        result = dms_schedule(loop.ddg, clusters=1)
        validate_schedule(result)

    def test_deterministic(self):
        ddg = single_use_ddg(build_fanout_loop(consumers=6).ddg)
        a = dms_schedule(ddg, 5)
        b = dms_schedule(ddg, 5)
        assert a.placements == b.placements


class TestCommunicationInvariant:
    @pytest.mark.parametrize("clusters", [4, 6, 8])
    def test_all_flow_edges_adjacent(self, clusters):
        ddg = single_use_ddg(build_fanout_loop(consumers=8).ddg)
        result = dms_schedule(ddg, clusters)
        topology = result.machine.topology
        for edge in result.ddg.edges():
            if edge.is_flow and edge.src != edge.dst:
                src = result.placements[edge.src].cluster
                dst = result.placements[edge.dst].cluster
                assert topology.distance(src, dst) <= 1

    def test_moves_only_on_clustered_machines(self):
        result = dms_schedule(build_stream_loop().ddg, clusters=1)
        assert result.n_moves == 0


class TestParityWithIMS:
    @pytest.mark.parametrize(
        "make_loop", [build_stream_loop, build_reduction_loop]
    )
    def test_single_cluster_ii_matches_unclustered(self, make_loop):
        loop = make_loop()
        dms = dms_schedule(loop.ddg, clusters=1)
        ims = IterativeModuloScheduler(unclustered_vliw(1)).schedule(
            loop.ddg.copy()
        )
        assert dms.ii == ims.ii

    def test_small_ring_overhead_only_from_copies(self):
        # 2-3 clusters are fully connected: a loop that needs no copies
        # must match the unclustered II exactly (paper section 4).
        loop = build_stream_loop()
        for clusters in (2, 3):
            dms = dms_schedule(loop.ddg, clusters=clusters)
            ims = IterativeModuloScheduler(
                unclustered_vliw(clusters)
            ).schedule(loop.ddg.copy())
            assert dms.ii == ims.ii
            assert dms.n_moves == 0


class TestStatistics:
    def test_strategy1_dominates_easy_loops(self):
        result = dms_schedule(build_stream_loop().ddg, clusters=4)
        assert result.stats.strategy1 > 0
        assert result.stats.strategy3 == 0

    def test_summary_mentions_scheduler(self):
        result = dms_schedule(build_stream_loop().ddg, clusters=4)
        assert "DMS" in result.summary()

    def test_cluster_histogram_covers_machine(self):
        result = dms_schedule(build_stream_loop().ddg, clusters=4)
        hist = result.cluster_histogram()
        assert set(hist) == {0, 1, 2, 3}
        assert sum(hist.values()) == len(result.ddg)
