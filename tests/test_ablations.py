"""Tests for the programmatic ablation studies."""

import pytest

from repro.experiments import (
    ABLATIONS,
    chain_policy_ablation,
    copy_fu_ablation,
    restart_ablation,
    single_use_ablation,
)
from repro.workloads import perfect_club_surrogate


@pytest.fixture(scope="module")
def loops():
    return perfect_club_surrogate(8, seed=21)


class TestRegistry:
    def test_all_ablations_registered(self):
        assert set(ABLATIONS) == {
            "copy_fus",
            "chain_policy",
            "single_use",
            "restarts",
            "topology",
        }


class TestShapes:
    def test_copy_fu_ablation(self, loops):
        figure = copy_fu_ablation(loops, cluster_counts=(4, 8))
        assert set(figure.series) == {"copy_fus_1", "copy_fus_2"}
        assert len(figure.x) == 2
        for values in figure.series.values():
            assert all(0.0 <= v <= 100.0 for v in values)

    def test_chain_policy_ablation(self, loops):
        figure = chain_policy_ablation(loops, cluster_counts=(6,))
        assert set(figure.series) == {"paper_rule", "shortest_only"}

    def test_single_use_ablation(self, loops):
        figure = single_use_ablation(loops, cluster_counts=(4,))
        assert set(figure.series) == {"copy_chain", "copy_tree"}

    def test_restart_ablation_never_worse(self, loops):
        figure = restart_ablation(loops, cluster_counts=(4, 8))
        for single, multi in zip(
            figure.series["restarts_1"], figure.series["restarts_3"]
        ):
            assert multi <= single + 1e-9
