"""Tests for schedule results, stats and derived metrics."""

import pytest

from repro.ir import DEFAULT_LATENCIES
from repro.machine import unclustered_vliw
from repro.scheduling import IterativeModuloScheduler, SchedulerStats

from .conftest import build_reduction_loop, build_stream_loop


def result_for(loop, k=1):
    return IterativeModuloScheduler(unclustered_vliw(k)).schedule(loop.ddg.copy())


class TestScheduleResult:
    def test_cycle_model(self):
        result = result_for(build_stream_loop())
        sc, ii = result.stage_count, result.ii
        assert result.cycles(1) == sc * ii
        assert result.cycles(10) == (10 + sc - 1) * ii

    def test_cycles_requires_positive_iterations(self):
        result = result_for(build_stream_loop())
        with pytest.raises(ValueError):
            result.cycles(0)

    def test_ipc_converges_to_ops_over_ii(self):
        result = result_for(build_stream_loop())
        asymptotic = result.n_useful_ops / result.ii
        assert result.ipc(10_000) == pytest.approx(asymptotic, rel=0.01)
        assert result.ipc(1) < asymptotic

    def test_ii_overhead(self):
        result = result_for(build_stream_loop())
        assert result.ii_overhead == result.ii - result.mii

    def test_stage_count_definition(self):
        result = result_for(build_reduction_loop())
        assert result.stage_count == result.max_time // result.ii + 1

    def test_useful_instances(self):
        result = result_for(build_stream_loop())
        assert result.useful_instances(7) == 7 * result.n_useful_ops


class TestSchedulerStats:
    def test_total_ejections_sums_causes(self):
        stats = SchedulerStats(
            ejections_resource=2,
            ejections_dependence=3,
            ejections_communication=4,
            ejections_chain=1,
        )
        assert stats.total_ejections == 10

    def test_merge_accumulates(self):
        a = SchedulerStats(placements=5, strategy1=2)
        b = SchedulerStats(placements=7, strategy2=3)
        a.merge(b)
        assert a.placements == 12
        assert a.strategy1 == 2
        assert a.strategy2 == 3
