"""Regression cases from the differential-oracle / fuzzer bring-up.

Two latent bug classes were flushed out while standing the oracle up:

1. **Ramp double-issue** — ``build_program`` spanned the full
   ``(SC-1)*II`` prologue even when ``ramp_iterations < SC``, re-listing
   issues the drain phase also covers (short trip counts executed some
   instances twice).  Pinned in ``test_oracle.py`` (the
   ``TestRampExactness`` class) and re-asserted here end to end.

2. **Simulator blind to ordering edges** — the timing simulator readied
   operands from per-*op* latency and modelled only value (flow) streams,
   so a schedule that reordered aliasing memory operations sailed through
   while the checker rejected it.  The schedule-mutation fuzzer found the
   class immediately once the synthetic population gained memory edges;
   both the per-edge latency rework and this regression pin it.

The third suite pins the shared-timing guarantee itself: the checker and
the simulator resolve every edge through one helper, so a topology with a
non-zero per-link communication cost moves both verdicts together.
"""

import dataclasses

import pytest

from repro.api import CompilationRequest, Toolchain
from repro.ir import LoopBuilder
from repro.machine import clustered_vliw
from repro.machine.topology import (
    RingTopology,
    TOPOLOGY_REGISTRY,
    _cached_topology,
    register_topology,
)
from repro.scheduling.checker import check_schedule
from repro.scheduling.schedule import Placement
from repro.scheduling.timing import dependence_slack, edge_ready_latency
from repro.simulator import simulate
import repro.simulator.engine as engine_module
from repro.validate import verify_compiled
from repro.validate.fuzz import contract_violations, evaluate


def compile_on(loop, machine, **kwargs):
    return Toolchain.default().compile(
        CompilationRequest(loop=loop, machine=machine, validate=False, **kwargs)
    ).compiled


def build_mem_edge_loop():
    """A stream loop with a store -> load aliasing edge (omega 1)."""
    b = LoopBuilder("aliasing")
    x = b.load("x[i]")
    y = b.load("y[i]")
    s = b.store(b.mul(b.add(x, y), "k"), "z[i]")
    b.mem_dep(s, x, omega=1, latency=1)
    return b.build(64)


class TestOrderingEdgeRegression:
    """Bug 2: mem-edge-violating schedules must fail in the simulator."""

    def _mem_edge_mutant(self):
        loop = build_mem_edge_loop()
        compiled = compile_on(loop, clustered_vliw(2))
        result = compiled.result
        edge = next(e for e in result.ddg.edges() if not e.is_flow)
        slack = dependence_slack(
            result.ddg,
            edge,
            result.placements,
            result.ii,
            result.latencies,
            result.machine,
        )
        # Push the *producer* side (the store) past the slack: moving an
        # op later is always representable, unlike a negative time.  Try
        # successive MRT rows until the ordering edge is the *only*
        # violated rule, isolating the memory-edge case.
        old = result.placements[edge.src]
        for extra in range(result.ii):
            placements = dict(result.placements)
            placements[edge.src] = Placement(
                time=old.time + slack + 1 + extra, cluster=old.cluster
            )
            mutant = dataclasses.replace(result, placements=placements)
            problems = check_schedule(mutant).problems
            if problems and all("dependence violated" in p for p in problems):
                return compiled, mutant, edge
        pytest.fail("could not isolate a mem-edge-only violation")

    def test_checker_and_simulator_agree_on_mem_violation(self):
        compiled, mutant, edge = self._mem_edge_mutant()
        checker = check_schedule(mutant)
        assert any("dependence violated" in p for p in checker.problems)
        sim = simulate(mutant, 6, strict=False)
        assert any("ordering violated" in p for p in sim.problems), (
            sim.problems
        )
        # Full contract: the oracle is allowed to stay blind (no value
        # flows through a memory edge) but checker/simulator must agree.
        verdicts = evaluate(compiled.loop, compiled.unroll_factor, mutant)
        assert not contract_violations("tighten_edge", verdicts)

    def test_pre_fix_engine_violates_the_contract(self, monkeypatch):
        """With the ordering check removed (the pre-fix engine), the same
        mutant is a checker/simulator disagreement — exactly what the
        fuzzer flagged during bring-up."""
        compiled, mutant, _edge = self._mem_edge_mutant()
        monkeypatch.setattr(
            engine_module, "_check_ordering_edges", lambda *a, **k: None
        )
        verdicts = evaluate(compiled.loop, compiled.unroll_factor, mutant)
        assert contract_violations("tighten_edge", verdicts) == [
            "checker rejects but simulator accepts"
        ]

    def test_valid_mem_edge_loop_passes_everywhere(self):
        loop = build_mem_edge_loop()
        compiled = compile_on(loop, clustered_vliw(2))
        assert check_schedule(compiled.result).ok
        assert simulate(compiled.result, 6).ok
        assert verify_compiled(compiled).ok


class TestSharedTimingGuarantee:
    """The checker and the simulator must resolve edge latency through
    one code path — including per-link communication cost."""

    @pytest.fixture()
    def slow_link_topology(self):
        @register_topology
        class SlowRing(RingTopology):
            kind = "slow-ring-test"

            def comm_latency(self, a, b):
                self._check(a)
                self._check(b)
                return 0 if a == b else 2

        try:
            yield "slow-ring-test"
        finally:
            TOPOLOGY_REGISTRY.pop("slow-ring-test", None)
            _cached_topology.cache_clear()

    def test_checker_and_simulator_move_together(self, slow_link_topology):
        """A ring schedule valid under free links must be judged under
        the slow links *identically* by checker and simulator."""
        b = LoopBuilder("cross")
        x = b.load("x[i]")
        b.store(b.add(x, "k"), "y[i]")
        loop = b.build(64)
        compiled = compile_on(loop, clustered_vliw(2))
        result = compiled.result
        slow_machine = dataclasses.replace(
            result.machine, topology_kind=slow_link_topology
        )
        slow = dataclasses.replace(result, machine=slow_machine)
        checker_ok = check_schedule(slow).ok
        sim = simulate(slow, 6, strict=False)
        assert checker_ok == sim.ok
        if not checker_ok:
            assert any("dependence violated" in p for p in check_schedule(slow).problems)
            assert any(
                "before it is ready" in p or "read from empty stream" in p
                for p in sim.problems
            ), sim.problems

    def test_edge_ready_latency_adds_link_cost(self, slow_link_topology):
        machine = clustered_vliw(4, topology=slow_link_topology)
        loop = build_mem_edge_loop()
        ddg = loop.ddg
        edge = next(e for e in ddg.edges() if e.is_flow)
        base = edge_ready_latency(ddg, edge, compile_on(
            loop, clustered_vliw(4)
        ).result.latencies)
        slow = edge_ready_latency(
            ddg,
            edge,
            compile_on(loop, clustered_vliw(4)).result.latencies,
            src_cluster=0,
            dst_cluster=1,
            machine=machine,
        )
        assert slow == base + 2

    def test_same_cluster_flow_has_no_link_cost(self, slow_link_topology):
        machine = clustered_vliw(4, topology=slow_link_topology)
        loop = build_mem_edge_loop()
        ddg = loop.ddg
        edge = next(e for e in ddg.edges() if e.is_flow)
        latencies = compile_on(loop, clustered_vliw(4)).result.latencies
        assert edge_ready_latency(
            ddg, edge, latencies, src_cluster=1, dst_cluster=1, machine=machine
        ) == edge_ready_latency(ddg, edge, latencies)

    def test_ordering_edges_never_pay_link_cost(self, slow_link_topology):
        machine = clustered_vliw(4, topology=slow_link_topology)
        loop = build_mem_edge_loop()
        ddg = loop.ddg
        edge = next(e for e in ddg.edges() if not e.is_flow)
        latencies = compile_on(loop, clustered_vliw(4)).result.latencies
        assert edge_ready_latency(
            ddg, edge, latencies, src_cluster=0, dst_cluster=1, machine=machine
        ) == edge.latency
