"""Unit tests for the service's HTTP framing layer.

Everything here exercises the pure functions in
:mod:`repro.service.http` (plus the client's response splitter) without
opening a socket: request-head parsing, response formatting, chunked
encoding and the incremental chunk decoder the sync client uses.
"""

import json

import pytest

from repro.errors import ServiceError
from repro.service.client import ServiceClient, TransportError, _parse_address
from repro.service.http import (
    LAST_CHUNK,
    MAX_HEAD_BYTES,
    ProtocolError,
    decode_chunks,
    encode_chunk,
    format_response_head,
    json_response,
    parse_request_head,
)


# ----------------------------------------------------------------------
# Request-head parsing
# ----------------------------------------------------------------------


def test_parse_request_head_basic():
    request = parse_request_head(
        b"POST /compile HTTP/1.1\r\nHost: x\r\nContent-Length: 12"
    )
    assert request.method == "POST"
    assert request.path == "/compile"
    assert request.headers["host"] == "x"
    assert request.headers["content-length"] == "12"


def test_parse_request_head_lowercases_method_and_headers():
    request = parse_request_head(b"get /healthz HTTP/1.0\r\nX-Thing:  v  ")
    assert request.method == "GET"
    assert request.headers["x-thing"] == "v"


@pytest.mark.parametrize(
    "head",
    [
        b"GET /x",  # too few request-line tokens
        b"GET /x HTTP/1.1 extra",  # too many
        b"GET /x SPDY/3",  # wrong protocol
        b"GET /x HTTP/1.1\r\nbadheader",  # header without colon
        b"GET /x HTTP/1.1\r\n: novalue",  # empty header name
    ],
)
def test_parse_request_head_rejects_malformed(head):
    with pytest.raises(ProtocolError):
        parse_request_head(head)


def test_protocol_error_maps_to_400():
    err = ProtocolError("nope")
    assert isinstance(err, ServiceError)
    assert err.status == 400


def test_route_and_query_parsing():
    request = parse_request_head(b"GET /jobs/3/events?wait=1&x= HTTP/1.1")
    assert request.route == ("jobs", "3", "events")
    assert request.query == {"wait": "1", "x": ""}
    bare = parse_request_head(b"GET / HTTP/1.1")
    assert bare.route == ()
    assert bare.query == {}


def test_request_body_json():
    request = parse_request_head(b"POST /compile HTTP/1.1")
    request.body = json.dumps({"kernel": "daxpy"}).encode()
    assert request.json() == {"kernel": "daxpy"}
    request.body = b""
    assert request.json() == {}
    request.body = b"{nope"
    with pytest.raises(ProtocolError):
        request.json()


def test_head_size_limit_is_sane():
    assert MAX_HEAD_BYTES >= 4096


# ----------------------------------------------------------------------
# Response formatting
# ----------------------------------------------------------------------


def test_format_response_head_content_length():
    head = format_response_head(200, content_length=5).decode()
    assert head.startswith("HTTP/1.1 200 OK\r\n")
    assert "Content-Length: 5\r\n" in head
    assert "Connection: close\r\n" in head
    assert head.endswith("\r\n\r\n")


def test_format_response_head_chunked():
    head = format_response_head(200, chunked=True).decode()
    assert "Transfer-Encoding: chunked\r\n" in head
    assert "Content-Length" not in head


def test_format_response_head_unknown_status_and_extras():
    head = format_response_head(599, content_length=0, extra_headers={"X-A": "1"})
    assert b"HTTP/1.1 599 Unknown" in head
    assert b"X-A: 1" in head


def test_json_response_roundtrip():
    raw = json_response(422, {"error": "bad"})
    head, _, body = raw.partition(b"\r\n\r\n")
    assert b"422 Unprocessable Entity" in head
    assert json.loads(body) == {"error": "bad"}
    assert f"Content-Length: {len(body)}".encode() in head


# ----------------------------------------------------------------------
# Chunked transfer coding
# ----------------------------------------------------------------------


def test_encode_decode_chunk_roundtrip():
    payload = b'{"event": "done"}\n'
    wire = encode_chunk(payload) + LAST_CHUNK
    chunks, rest, finished = decode_chunks(wire)
    assert chunks == [payload]
    assert rest == b""
    assert finished


def test_decode_chunks_incremental():
    # Feed the stream one byte at a time, as a socket might deliver it.
    events = [b"alpha", b"beta-longer-chunk", b"g"]
    wire = b"".join(encode_chunk(e) for e in events) + LAST_CHUNK
    seen, buffer = [], b""
    finished = False
    for i in range(len(wire)):
        buffer += wire[i : i + 1]
        chunks, buffer, finished = decode_chunks(buffer)
        seen.extend(chunks)
    assert seen == events
    assert finished


def test_decode_chunks_partial_returns_remainder():
    wire = encode_chunk(b"hello")
    chunks, rest, finished = decode_chunks(wire[:3])
    assert chunks == []
    assert rest == wire[:3]
    assert not finished


def test_decode_chunks_rejects_bad_size():
    with pytest.raises(ProtocolError):
        decode_chunks(b"zz\r\ndata\r\n")


def test_decode_chunks_rejects_missing_crlf():
    bad = b"5\r\nhelloXX"
    with pytest.raises(ProtocolError):
        decode_chunks(bad)


def test_decode_chunks_with_extension_token():
    # "5;ext=1" size lines are legal HTTP; the decoder ignores the extension.
    wire = b"5;ext=1\r\nhello\r\n" + LAST_CHUNK
    chunks, _, finished = decode_chunks(wire)
    assert chunks == [b"hello"]
    assert finished


# ----------------------------------------------------------------------
# Client-side response splitting / addressing
# ----------------------------------------------------------------------


def test_client_split_head():
    raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\r\n{}"
    status, headers, body = ServiceClient._split_head(raw)
    assert status == 200
    assert headers["content-type"] == "application/json"
    assert body == b"{}"


def test_client_split_head_rejects_garbage():
    with pytest.raises(ProtocolError):
        ServiceClient._split_head(b"NOTHTTP nope\r\n\r\n")
    with pytest.raises(ProtocolError):
        ServiceClient._split_head(b"HTTP/1.1 abc Bad\r\n\r\n")
    # A head that never terminates is a truncated *transport* read (the
    # peer hung up mid-response), not a malformed-but-complete reply —
    # it must raise the retryable error so the client resubmits.
    with pytest.raises(TransportError):
        ServiceClient._split_head(b"no blank line at all")


def test_parse_address_forms():
    assert _parse_address("127.0.0.1:8731") == ("127.0.0.1", 8731)
    assert _parse_address(("localhost", 9)) == ("localhost", 9)
    assert _parse_address(":123") == ("127.0.0.1", 123)
    with pytest.raises(ServiceError):
        _parse_address("nakedhost")
    with pytest.raises(ServiceError):
        _parse_address("host:notaport")
