"""Tests for the single-use (copy insertion) transformation."""

import pytest

from repro.errors import TransformError
from repro.ir import LoopBuilder, OpCode
from repro.ir.transforms import (
    copy_count,
    max_fanout,
    single_use_ddg,
    single_use_loop,
)

from .conftest import build_fanout_loop, build_reduction_loop, build_stream_loop


class TestFanoutLimit:
    @pytest.mark.parametrize("consumers", [3, 4, 5, 8, 12])
    @pytest.mark.parametrize("strategy", ["chain", "tree"])
    def test_fanout_bounded_by_two(self, consumers, strategy):
        loop = build_fanout_loop(consumers=consumers)
        result = single_use_ddg(loop.ddg, strategy)
        assert max_fanout(result) <= 2
        result.validate()

    def test_low_fanout_untouched(self):
        loop = build_stream_loop()
        result = single_use_ddg(loop.ddg)
        assert copy_count(result) == 0
        assert len(result) == loop.n_ops

    def test_copy_count_chain(self):
        # n consumers served by a linear chain need n-2 copies.
        loop = build_fanout_loop(consumers=6)
        result = single_use_ddg(loop.ddg, "chain")
        assert copy_count(result) == 4

    def test_unknown_strategy_rejected(self):
        loop = build_fanout_loop()
        with pytest.raises(TransformError):
            single_use_ddg(loop.ddg, "spiral")


class TestSemanticPreservation:
    @pytest.mark.parametrize("strategy", ["chain", "tree"])
    def test_consumers_still_reach_producer(self, strategy):
        loop = build_fanout_loop(consumers=7)
        result = single_use_ddg(loop.ddg, strategy)
        # Every original multiply must transitively read the load (op 0)
        # through copies only.
        for op in result.operations():
            if op.opcode != OpCode.MUL:
                continue
            current = op.srcs[0].producer
            hops = 0
            while result.op(current).opcode == OpCode.COPY:
                current = result.op(current).srcs[0].producer
                hops += 1
                assert hops < 20
            assert current == 0

    def test_duplicate_operand_split(self):
        # x * x: both references count toward fan-out.
        b = LoopBuilder("sq")
        x = b.load()
        b.store(b.mul(x, x))
        b.store(b.add(x, "k"))  # third reference
        loop = b.build()
        assert loop.ddg.flow_fanout(x.op_id) == 3
        result = single_use_ddg(loop.ddg)
        assert max_fanout(result) <= 2
        result.validate()

    def test_loop_carried_references_preserved(self):
        # A value consumed at omegas 0,1,2,3 keeps per-reference omegas.
        b = LoopBuilder("taps")
        x = b.load()
        total = b.add(x, b.carried(x, 1))
        total = b.add(total, b.carried(x, 2))
        total = b.add(total, b.carried(x, 3))
        b.store(total)
        loop = b.build()
        result = single_use_ddg(loop.ddg)
        assert max_fanout(result) <= 2
        omegas = sorted(
            src.omega
            for op in result.operations()
            if op.opcode == OpCode.ADD
            for src in op.srcs
            if not src.is_external and result.op(src.producer).opcode != OpCode.ADD
        )
        # The four original sample references still carry 0..3 total.
        assert omegas.count(0) >= 1

    def test_self_recurrence_copy_extends_cycle(self):
        # acc consumed by itself + 2 stores -> copies join the circuit
        # or hang off it, but the recurrence must survive.
        b = LoopBuilder("rec_fan")
        x = b.load()
        acc = b.placeholder()
        total = b.add(x, b.carried(acc, 1), tag="acc")
        b.bind(acc, total)
        b.store(total, "a")
        b.store(total, "b")
        loop = b.build()
        result = single_use_ddg(loop.ddg)
        assert max_fanout(result) <= 2
        assert result.has_recurrence()
        result.validate()

    def test_useful_op_count_unchanged(self):
        loop = build_fanout_loop(consumers=9)
        result = single_use_ddg(loop.ddg)
        assert result.n_useful_ops() == loop.ddg.n_useful_ops()


class TestStrategies:
    def test_tree_no_deeper_than_chain(self):
        loop = build_fanout_loop(consumers=10)
        chain = single_use_ddg(loop.ddg, "chain")
        tree = single_use_ddg(loop.ddg, "tree")

        def copy_depth(ddg):
            depth = {}
            for op in ddg.operations():
                if op.opcode == OpCode.COPY:
                    src = op.srcs[0].producer
                    depth[op.op_id] = depth.get(src, 0) + 1
            return max(depth.values(), default=0)

        assert copy_depth(tree) <= copy_depth(chain)

    def test_loop_wrapper(self):
        loop = build_fanout_loop(consumers=5)
        transformed = single_use_loop(loop)
        assert transformed.name == loop.name
        assert transformed.trip_count == loop.trip_count
        assert max_fanout(transformed.ddg) <= 2

    def test_idempotent(self):
        loop = build_fanout_loop(consumers=8)
        once = single_use_ddg(loop.ddg)
        twice = single_use_ddg(once)
        assert len(twice) == len(once)
