"""Miscellaneous edge cases across modules."""

import pytest

from repro import errors
from repro.errors import IIOverflowError, ReproError
from repro.experiments import FigureData
from repro.ir.transforms import single_use_ddg
from repro.machine import clustered_vliw, unclustered_vliw
from repro.codegen import build_program, render_program
from repro.scheduling import TwoPhaseScheduler, IterativeModuloScheduler
from repro.simulator import collect_trace

from .conftest import build_fanout_loop, build_stream_loop


class TestErrorHierarchy:
    def test_every_error_is_a_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj not in (ReproError, Exception):
                    assert issubclass(obj, ReproError), name

    def test_ii_overflow_carries_context(self):
        err = IIOverflowError("my_loop", 42)
        assert err.loop_name == "my_loop"
        assert err.max_ii == 42
        assert "my_loop" in str(err)


class TestFigureDataEdges:
    def figure(self):
        return FigureData(
            "f", "title", "x", [1.0, 2.0], {"a": [3.0, 4.0], "b": [5.0, 6.0]}
        )

    def test_series_value_unknown_x(self):
        with pytest.raises(ValueError):
            self.figure().series_value("a", 9.0)

    def test_series_value_unknown_label(self):
        with pytest.raises(KeyError):
            self.figure().series_value("zzz", 1.0)

    def test_render_precision(self):
        text = self.figure().render_table(precision=0)
        assert "3" in text and "3.00" not in text


class TestCodegenForOtherSchedulers:
    def test_two_phase_program_builds(self):
        loop = build_fanout_loop(consumers=5)
        result = TwoPhaseScheduler(clustered_vliw(4)).schedule(
            single_use_ddg(loop.ddg)
        )
        program = build_program(result)
        assert program.kernel_ops == len(result.ddg)
        assert "kernel:" in render_program(program)


class TestTraceEdges:
    def test_zero_max_cycles(self):
        loop = build_stream_loop()
        result = IterativeModuloScheduler(unclustered_vliw(2)).schedule(
            loop.ddg.copy()
        )
        trace = collect_trace(result, iterations=2, max_cycles=1)
        assert all(e.cycle == 0 for e in trace.entries)

    def test_trace_respects_iteration_bound(self):
        loop = build_stream_loop()
        result = IterativeModuloScheduler(unclustered_vliw(2)).schedule(
            loop.ddg.copy()
        )
        trace = collect_trace(result, iterations=1, max_cycles=1000)
        assert {e.iteration for e in trace.entries} == {0}


class TestMachineDescriptions:
    def test_describe_unclustered(self):
        text = unclustered_vliw(2).describe()
        assert "unclustered" in text

    def test_paper_cluster_range(self):
        from repro.machine import PAPER_CLUSTER_RANGE

        assert PAPER_CLUSTER_RANGE == tuple(range(1, 11))
