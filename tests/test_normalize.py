"""Tests for DDG normalisation (dead ops, renumbering, stats)."""

import pytest

from repro.errors import TransformError
from repro.ir import LoopBuilder, OpCode
from repro.ir.transforms import (
    ddg_stats,
    live_roots,
    remove_dead_ops,
    renumber,
)

from .conftest import build_reduction_loop, build_stream_loop


def loop_with_dead_code():
    b = LoopBuilder("dead")
    x = b.load("x")
    y = b.load("y")
    b.store(b.add(x, "k"), "out")
    b.mul(y, "c")  # feeds nothing
    return b.build()


class TestDeadCode:
    def test_unused_chain_removed(self):
        loop = loop_with_dead_code()
        cleaned = remove_dead_ops(loop.ddg)
        opcodes = [op.opcode for op in cleaned.operations()]
        assert OpCode.MUL not in opcodes
        # The dead multiply's load is also dead.
        assert opcodes.count(OpCode.LOAD) == 1

    def test_recurrences_are_roots(self):
        loop = build_reduction_loop()
        cleaned = remove_dead_ops(loop.ddg)
        # The accumulator has no store, but it is a recurrence: kept.
        assert len(cleaned) == len(loop.ddg)

    def test_custom_roots(self):
        loop = loop_with_dead_code()
        cleaned = remove_dead_ops(loop.ddg, roots=set(loop.ddg.op_ids))
        assert len(cleaned) == len(loop.ddg)

    def test_unknown_roots_rejected(self):
        loop = build_stream_loop()
        with pytest.raises(TransformError):
            remove_dead_ops(loop.ddg, roots={99})

    def test_live_roots_contents(self):
        loop = build_reduction_loop()
        roots = live_roots(loop.ddg)
        assert roots  # the accumulator circuit
        loop2 = build_stream_loop()
        roots2 = live_roots(loop2.ddg)
        stores = {
            op.op_id
            for op in loop2.ddg.operations()
            if op.opcode == OpCode.STORE
        }
        assert stores <= roots2


class TestRenumber:
    def test_ids_compacted(self):
        loop = loop_with_dead_code()
        cleaned = remove_dead_ops(loop.ddg)
        renumbered, mapping = renumber(cleaned)
        assert list(renumbered.op_ids) == list(range(len(cleaned)))
        assert set(mapping) == set(cleaned.op_ids)

    def test_structure_preserved(self):
        loop = build_reduction_loop()
        renumbered, _mapping = renumber(loop.ddg)
        renumbered.validate()
        assert renumbered.has_recurrence()
        assert len(renumbered) == len(loop.ddg)


class TestStats:
    def test_stream_stats(self):
        stats = ddg_stats(build_stream_loop().ddg)
        assert stats.n_ops == 5
        assert not stats.has_recurrence
        assert stats.largest_scc == 0

    def test_reduction_stats(self):
        stats = ddg_stats(build_reduction_loop().ddg)
        assert stats.has_recurrence
        assert stats.n_recurrences == 1
        assert stats.largest_scc == 1
