"""DDG adjacency-cache invalidation tests.

The DDG caches pre-sorted adjacency tuples, the sorted id tuple and flow
consumer references, invalidated only by mutation.  These tests exercise
the invalidation paths the DMS scheduler actually takes — move insertion
(``new_operation`` + ``replace_operand``) and chain dismantling
(``replace_operand`` back + ``remove_operation``) — plus copy
independence and the adjacency-version counter scheduler caches key off.
"""

import pytest

from repro.errors import SchedulingError
from repro.ir.ddg import DDG
from repro.ir.edges import DepKind
from repro.ir.opcodes import OpCode, FUKind
from repro.ir.operations import ValueUse, external, use
from repro.machine import clustered_vliw
from repro.scheduling.mrt import ModuloReservationTable
from repro.scheduling.schedule import PartialSchedule
from repro.ir.opcodes import DEFAULT_LATENCIES


def chain_ddg() -> DDG:
    """load -> add -> store with one loop-carried use."""
    ddg = DDG("t")
    ddg.new_operation(OpCode.LOAD, (external("a"),))  # 0
    ddg.new_operation(OpCode.ADD, (use(0), use(1, omega=1)))  # 1
    ddg.new_operation(OpCode.STORE, (use(1), external("p")))  # 2
    return ddg


def edge_pairs(edges):
    return [(e.src, e.dst, e.kind, e.omega) for e in edges]


class TestAdjacencyCaches:
    def test_reads_are_cached_tuples(self):
        ddg = chain_ddg()
        assert ddg.out_edges(0) is ddg.out_edges(0)
        assert ddg.in_edges(1) is ddg.in_edges(1)
        assert ddg.op_ids is ddg.op_ids
        assert ddg.flow_succ_refs(0) is ddg.flow_succ_refs(0)

    def test_add_dep_invalidates_both_endpoints(self):
        ddg = chain_ddg()
        out0 = ddg.out_edges(0)
        in2 = ddg.in_edges(2)
        ddg.add_dep(0, 2, DepKind.MEM, omega=0, latency=1)
        assert ddg.out_edges(0) is not out0
        assert ddg.in_edges(2) is not in2
        assert (0, 2, DepKind.MEM, 0) in [
            (e.src, e.dst, e.kind, e.omega) for e in ddg.out_edges(0)
        ]

    def test_remove_dep_invalidates(self):
        ddg = chain_ddg()
        edge = ddg.add_dep(0, 2, DepKind.MEM, omega=0, latency=1)
        before = ddg.out_edges(0)
        ddg.remove_dep(edge)
        assert edge_pairs(ddg.out_edges(0)) == [
            (0, 1, DepKind.FLOW, 0)
        ]
        assert before is not ddg.out_edges(0)

    def test_op_ids_track_add_and_remove(self):
        ddg = chain_ddg()
        assert ddg.op_ids == (0, 1, 2)
        move = ddg.new_operation(OpCode.MOVE, (use(0),))
        assert ddg.op_ids == (0, 1, 2, move.op_id)
        # rewire the only consumer of the move before removing it
        ddg.remove_operation(move.op_id)
        assert ddg.op_ids == (0, 1, 2)

    def test_move_insertion_invalidates_like_dms(self):
        """The exact mutation sequence of ChainPlanner.apply."""
        ddg = chain_ddg()
        refs0 = ddg.flow_succ_refs(0)
        assert refs0 == ((1, 0, 0),)
        move = ddg.new_operation(OpCode.MOVE, (use(0),))
        # producer 0 now also feeds the move
        assert ddg.flow_succ_refs(0) == ((1, 0, 0), (move.op_id, 0, 0))
        ddg.replace_operand(1, 0, use(move.op_id))
        assert ddg.flow_succ_refs(0) == ((move.op_id, 0, 0),)
        assert ddg.flow_succ_refs(move.op_id) == ((1, 0, 0),)
        assert (move.op_id, 1, DepKind.FLOW, 0) in [
            (e.src, e.dst, e.kind, e.omega) for e in ddg.in_edges(1)
        ]
        ddg.validate()

    def test_chain_dismantle_restores_adjacency(self):
        ddg = chain_ddg()
        snapshot_out = edge_pairs(ddg.out_edges(0))
        snapshot_in = edge_pairs(ddg.in_edges(1))
        snapshot_refs = ddg.flow_succ_refs(0)
        move = ddg.new_operation(OpCode.MOVE, (use(0),))
        ddg.replace_operand(1, 0, use(move.op_id))
        # dismantle: restore the original operand, drop the move
        ddg.replace_operand(1, 0, use(0))
        ddg.remove_operation(move.op_id)
        assert edge_pairs(ddg.out_edges(0)) == snapshot_out
        assert edge_pairs(ddg.in_edges(1)) == snapshot_in
        assert ddg.flow_succ_refs(0) == snapshot_refs
        assert ddg.op_ids == (0, 1, 2)
        ddg.validate()

    def test_copy_isolation_both_directions(self):
        ddg = chain_ddg()
        ddg.out_edges(0)  # warm caches
        clone = ddg.copy()
        move = clone.new_operation(OpCode.MOVE, (use(0),))
        clone.replace_operand(1, 0, use(move.op_id))
        # original unaffected
        assert edge_pairs(ddg.out_edges(0)) == [(0, 1, DepKind.FLOW, 0)]
        assert ddg.flow_succ_refs(0) == ((1, 0, 0),)
        assert move.op_id not in ddg
        # and the clone sees its own mutation
        assert (0, move.op_id, DepKind.FLOW, 0) in edge_pairs(clone.out_edges(0))
        # mutating the original afterwards leaves the clone alone
        ddg.add_dep(0, 2, DepKind.MEM, latency=1)
        assert all(e.kind != DepKind.MEM for e in clone.out_edges(0))

    def test_adj_version_bumps_on_mutation_only(self):
        ddg = chain_ddg()
        v0 = ddg.adj_version(0)
        v2 = ddg.adj_version(2)
        ddg.out_edges(0)
        ddg.in_edges(0)
        assert ddg.adj_version(0) == v0  # reads do not bump
        ddg.add_dep(0, 2, DepKind.MEM, latency=1)
        assert ddg.adj_version(0) > v0
        assert ddg.adj_version(2) > v2

    def test_forward_reference_resolved_on_late_insert(self):
        ddg = DDG("fwd")
        ddg.new_operation(OpCode.ADD, (use(5), external("x")), op_id=0)
        assert edge_pairs(ddg.in_edges(0)) == []
        ddg.new_operation(OpCode.LOAD, (external("a"),), op_id=5)
        assert edge_pairs(ddg.in_edges(0)) == [(5, 0, DepKind.FLOW, 0)]
        ddg.validate()


class TestMRTCaches:
    def test_occupants_cached_until_mutation(self):
        machine = clustered_vliw(2)
        mrt = ModuloReservationTable(machine, 2)
        mrt.place(7, 0, FUKind.ALU, 1)
        first = mrt.occupants(0, FUKind.ALU, 1)
        assert first == (7,)
        assert mrt.occupants(0, FUKind.ALU, 3) is first  # same row, cached
        mrt.place(3, 0, FUKind.ALU, 2)  # row 0: invalidates only that row
        assert mrt.occupants(0, FUKind.ALU, 1) is first
        assert mrt.occupants(0, FUKind.ALU, 0) == (3,)
        with pytest.raises(SchedulingError):
            mrt.place(9, 0, FUKind.ALU, 1)  # row 1 full (capacity 1)
        mrt.remove(7, 0, FUKind.ALU, 1)
        assert mrt.occupants(0, FUKind.ALU, 1) == ()

    def test_full_backtrack_reports_fresh_state(self):
        machine = clustered_vliw(2)
        mrt = ModuloReservationTable(machine, 3)
        fresh = ModuloReservationTable(machine, 3)
        mrt.place(1, 1, FUKind.MEM, 0)
        assert mrt.used_slots(1, FUKind.MEM) == 1
        mrt.remove(1, 1, FUKind.MEM, 0)
        for kind in (FUKind.MEM, FUKind.ALU, FUKind.COPY):
            for cluster in range(2):
                assert mrt.used_slots(cluster, kind) == fresh.used_slots(cluster, kind)
                assert mrt.free_slots(cluster, kind) == fresh.free_slots(cluster, kind)
                for time in range(3):
                    assert mrt.occupants(cluster, kind, time) == ()
                    assert mrt.is_free(cluster, kind, time) == fresh.is_free(
                        cluster, kind, time
                    )

    def test_first_free_slot_matches_is_free_scan(self):
        machine = clustered_vliw(2)
        ii = 4
        mrt = ModuloReservationTable(machine, ii)
        mrt.place(1, 0, FUKind.COPY, 0)
        mrt.place(2, 0, FUKind.COPY, 1)
        for estart in range(0, 9):
            expected = None
            for time in range(estart, estart + ii):
                if mrt.is_free(0, FUKind.COPY, time):
                    expected = time
                    break
            assert mrt.first_free_slot(0, FUKind.COPY, estart) == expected

    def test_first_free_slot_full_lane(self):
        machine = clustered_vliw(2)
        mrt = ModuloReservationTable(machine, 2)
        mrt.place(1, 0, FUKind.MUL, 0)
        mrt.place(2, 0, FUKind.MUL, 1)
        assert mrt.first_free_slot(0, FUKind.MUL, 0) is None


class TestIncrementalCompat:
    def brute_force(self, schedule, op_id):
        return [
            c
            for c in range(schedule.machine.n_clusters)
            if not schedule.comm_conflicts(op_id, c)
        ]

    def test_compat_tracks_place_remove_and_mutation(self):
        ddg = DDG("compat")
        ddg.new_operation(OpCode.LOAD, (external("a"),))  # 0
        ddg.new_operation(OpCode.LOAD, (external("b"),))  # 1
        ddg.new_operation(OpCode.ADD, (use(0), use(1)))  # 2
        ddg.new_operation(OpCode.STORE, (use(2), external("p")))  # 3
        machine = clustered_vliw(6)  # 6-cluster ring
        schedule = PartialSchedule(ddg, machine, 2, DEFAULT_LATENCIES)

        assert schedule.comm_compatible_clusters(2) == self.brute_force(schedule, 2)
        schedule.place(0, 0, 0)
        assert schedule.comm_compatible_clusters(2) == self.brute_force(schedule, 2)
        schedule.place(1, 0, 2)
        # preds on clusters 0 and 2 -> only cluster 1 is compatible
        assert schedule.comm_compatible_clusters(2) == [1]
        assert schedule.comm_compatible_clusters(2) == self.brute_force(schedule, 2)
        schedule.remove(1)
        assert schedule.comm_compatible_clusters(2) == self.brute_force(schedule, 2)
        # graph mutation (move insertion) invalidates the cached set
        move = ddg.new_operation(OpCode.MOVE, (use(1),))
        ddg.replace_operand(2, 1, use(move.op_id))
        schedule.place(move.op_id, 0, 5)
        assert schedule.comm_compatible_clusters(2) == self.brute_force(schedule, 2)

    def test_unconstrained_op_sees_every_cluster(self):
        ddg = DDG("free")
        ddg.new_operation(OpCode.LOAD, (external("a"),))
        machine = clustered_vliw(4)
        schedule = PartialSchedule(ddg, machine, 2, DEFAULT_LATENCIES)
        assert schedule.comm_compatible_clusters(0) == [0, 1, 2, 3]

    def test_asymmetric_topology_judged_per_direction(self):
        from repro.machine.topology import (
            TOPOLOGY_REGISTRY,
            Topology,
            register_topology,
        )

        if "oneway-ring-test" not in TOPOLOGY_REGISTRY:

            @register_topology
            class OneWayRing(Topology):
                """dist(a, b) = (b - a) mod n — deliberately asymmetric."""

                kind = "oneway-ring-test"

                def distance(self, a, b):
                    return (b - a) % self.n_clusters

                def neighbors(self, cluster):
                    return ((cluster + 1) % self.n_clusters,)

        ddg = DDG("asym")
        ddg.new_operation(OpCode.LOAD, (external("a"),))  # 0: producer
        ddg.new_operation(OpCode.ADD, (use(0), external("x")))  # 1: consumer
        machine = clustered_vliw(3, topology="oneway-ring-test")
        schedule = PartialSchedule(ddg, machine, 2, DEFAULT_LATENCIES)

        # Producer on cluster 0: the consumer must be within one *forward*
        # hop of it -> clusters {0, 1}, not {0, 2}.
        schedule.place(0, 0, 0)
        assert schedule.comm_compatible_clusters(1) == [0, 1]
        assert schedule.comm_conflicts(1, 2) == [0]
        schedule.remove(0)
        # Consumer on cluster 0: the producer must reach it in one forward
        # hop -> clusters {0, 2}.
        schedule.place(1, 1, 0)
        assert schedule.comm_compatible_clusters(0) == [0, 2]
        assert schedule.comm_conflicts(0, 1) == [1]
