"""Tests for machine descriptions and the paper presets."""

import pytest

from repro.errors import MachineError
from repro.ir import FUKind
from repro.machine import (
    ClusterSpec,
    PAPER_CLUSTER,
    QueueFileSpec,
    clustered_vliw,
    paper_machine_pair,
    unclustered_vliw,
)
from repro.machine.cqrf import CQRFId, LRFId, queue_file_for
from repro.machine.fu import fu_name


class TestClusterSpec:
    def test_paper_cluster_shape(self):
        assert PAPER_CLUSTER.mem == 1
        assert PAPER_CLUSTER.alu == 1
        assert PAPER_CLUSTER.mul == 1
        assert PAPER_CLUSTER.copy == 1
        assert PAPER_CLUSTER.useful_fus == 3
        assert PAPER_CLUSTER.total_fus == 4

    def test_fu_count_lookup(self):
        spec = ClusterSpec(mem=2, alu=1, mul=3, copy=0)
        assert spec.fu_count(FUKind.MEM) == 2
        assert spec.fu_count(FUKind.MUL) == 3
        assert spec.fu_count(FUKind.COPY) == 0

    def test_iter_fus_order(self):
        spec = ClusterSpec(mem=1, alu=2, mul=1, copy=1)
        kinds = [kind for kind, _ in spec.iter_fus()]
        assert kinds == [FUKind.MEM, FUKind.ALU, FUKind.ALU, FUKind.MUL, FUKind.COPY]

    def test_empty_cluster_rejected(self):
        with pytest.raises(MachineError):
            ClusterSpec(mem=0, alu=0, mul=0)

    def test_negative_count_rejected(self):
        with pytest.raises(MachineError):
            ClusterSpec(mem=-1)


class TestMachines:
    def test_clustered_preset(self):
        machine = clustered_vliw(4)
        assert machine.n_clusters == 4
        assert machine.is_clustered
        assert machine.useful_fus == 12
        assert machine.fu_count(FUKind.COPY) == 4

    def test_unclustered_preset(self):
        machine = unclustered_vliw(4)
        assert machine.n_clusters == 1
        assert not machine.is_clustered
        assert machine.useful_fus == 12
        assert machine.fu_count(FUKind.COPY) == 0

    def test_paper_pair_matches_fu_totals(self):
        for k in range(1, 11):
            clustered, unclustered = paper_machine_pair(k)
            assert clustered.useful_fus == unclustered.useful_fus == 3 * k

    def test_single_cluster_machine_is_not_clustered(self):
        assert not clustered_vliw(1).is_clustered

    def test_cqrf_ids(self):
        machine = clustered_vliw(4)
        ids = machine.cqrf_ids()
        assert CQRFId(0, 1) in ids
        assert CQRFId(1, 0) in ids
        assert len(ids) == 8

    def test_no_cqrfs_on_single_cluster(self):
        assert clustered_vliw(1).cqrf_ids() == ()

    def test_supports(self):
        machine = unclustered_vliw(2)
        assert machine.supports(FUKind.MEM)
        assert not machine.supports(FUKind.COPY)

    def test_describe_mentions_shape(self):
        text = clustered_vliw(3).describe()
        assert "3 cluster" in text
        assert "9 useful FUs" in text

    def test_invalid_sizes(self):
        with pytest.raises(MachineError):
            clustered_vliw(0)
        with pytest.raises(MachineError):
            unclustered_vliw(0)

    def test_cluster_index_bounds(self):
        machine = clustered_vliw(2)
        with pytest.raises(MachineError):
            machine.cluster(2)


class TestQueueFiles:
    def test_queue_file_routing(self):
        assert queue_file_for(2, 2) == LRFId(2)
        assert queue_file_for(1, 2) == CQRFId(1, 2)

    def test_cqrf_needs_distinct_clusters(self):
        with pytest.raises(MachineError):
            CQRFId(3, 3)

    def test_queue_spec_validation(self):
        with pytest.raises(MachineError):
            QueueFileSpec(n_queues=0)
        with pytest.raises(MachineError):
            QueueFileSpec(queue_depth=0)

    def test_queue_spec_capacity(self):
        assert QueueFileSpec(n_queues=8, queue_depth=4).capacity == 32

    def test_names(self):
        assert str(LRFId(1)) == "lrf[c1]"
        assert str(CQRFId(0, 1)) == "cqrf[c0->c1]"
        assert fu_name(2, FUKind.ALU, 0) == "c2.alu0"
