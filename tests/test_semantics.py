"""Value-level semantic equivalence of the graph rewrites.

The strongest correctness statement in the repository: unrolling,
single-use copy insertion and DMS move chains must not change the values
a loop computes.  Each transform is checked against a sequential
reference execution with deterministic inputs.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import SimulationError
from repro.ir.transforms import (
    base_op_of,
    single_use_ddg,
    unroll_ddg,
    unrolled_op_id,
)
from repro.machine import clustered_vliw
from repro.scheduling import DistributedModuloScheduler
from repro.simulator import (
    assert_same_semantics,
    sequential_run,
    streams_equal,
)
from repro.simulator.semantics import default_load_token
from repro.workloads import KERNELS, make_kernel

from .conftest import build_fanout_loop, build_stream_loop
from .test_properties import random_ddg, _settings


def assert_unroll_equivalent(base, factor, iterations_u=6):
    """Unrolled copy c at iteration j == base at iteration j*u + c."""
    unrolled = unroll_ddg(base, factor)
    n = len(base.op_ids)

    def token(op):
        base_id, _copy = base_op_of(base, op.op_id, factor)
        return default_load_token(base.op(base_id))

    def iteration(op, j):
        _base_id, copy = base_op_of(base, op.op_id, factor)
        return j * factor + copy

    base_run = sequential_run(base, iterations_u * factor)
    unrolled_run = sequential_run(
        unrolled, iterations_u, load_token=token, iteration_of=iteration
    )
    store_ids = [
        op.op_id for op in base.operations() if op.op_id in base_run.store_streams
    ]
    for store_id in store_ids:
        base_stream = base_run.store_streams[store_id]
        for copy in range(factor):
            replica = unrolled_op_id(base, store_id, copy, factor)
            unrolled_stream = unrolled_run.store_streams[replica]
            expected = [
                base_stream[j * factor + copy] for j in range(iterations_u)
            ]
            assert unrolled_stream == pytest.approx(expected), (
                f"store {store_id} copy {copy} diverged"
            )


class TestSequentialRun:
    def test_deterministic(self):
        ddg = build_stream_loop().ddg
        a = sequential_run(ddg, 5).stream_by_token()
        b = sequential_run(ddg, 5).stream_by_token()
        assert streams_equal(a, b)

    def test_different_inputs_differ(self):
        ddg = build_stream_loop().ddg
        a = sequential_run(ddg, 5).stream_by_token()
        b = sequential_run(ddg, 5, input_salt="other").stream_by_token()
        assert not streams_equal(a, b)

    def test_recurrence_uses_seeds(self):
        loop = make_kernel("dot_product")
        ddg = loop.ddg.copy()
        from repro.ir import OpCode
        from repro.ir.operations import use

        # Add a store so the accumulator is observable.
        acc = next(
            op.op_id for op in ddg.operations() if op.opcode == OpCode.ADD
        )
        ddg.new_operation(OpCode.STORE, (use(acc),), tag="out")
        run = sequential_run(ddg, 4)
        stream = next(iter(run.store_streams.values()))
        # The accumulator strictly grows (all inputs positive).
        assert stream == sorted(stream)

    def test_invalid_iterations(self):
        with pytest.raises(SimulationError):
            sequential_run(build_stream_loop().ddg, 0)


class TestSingleUseEquivalence:
    @pytest.mark.parametrize("consumers", [3, 5, 9])
    @pytest.mark.parametrize("strategy", ["chain", "tree"])
    def test_fanout_loop(self, consumers, strategy):
        base = build_fanout_loop(consumers=consumers).ddg
        rewritten = single_use_ddg(base, strategy)
        assert_same_semantics(base, rewritten, iterations=6)

    @pytest.mark.parametrize(
        "name", ["fir_filter", "stencil5", "iir_biquad", "lms_update"]
    )
    def test_kernels(self, name):
        base = make_kernel(name).ddg
        rewritten = single_use_ddg(base)
        assert_same_semantics(base, rewritten, iterations=8)

    @given(ddg=random_ddg())
    @_settings
    def test_random_graphs(self, ddg):
        # Give every op a store so all values are observable.
        from repro.ir import OpCode
        from repro.ir.operations import use

        observed = ddg.copy()
        for op_id in list(observed.op_ids):
            observed.new_operation(
                OpCode.STORE, (use(op_id),), tag=f"obs{op_id}"
            )
        rewritten = single_use_ddg(observed)
        assert_same_semantics(observed, rewritten, iterations=5)


class TestUnrollEquivalence:
    @pytest.mark.parametrize("factor", [2, 3, 5])
    def test_stream_loop(self, factor):
        assert_unroll_equivalent(build_stream_loop().ddg, factor)

    @pytest.mark.parametrize(
        "name", ["cumulative_sum", "stencil3", "iir_biquad"]
    )
    def test_kernels_with_recurrences(self, name):
        assert_unroll_equivalent(make_kernel(name).ddg, 4)

    @given(ddg=random_ddg(max_ops=8), factor=st.integers(2, 4))
    @_settings
    def test_random_graphs(self, ddg, factor):
        from repro.ir import OpCode
        from repro.ir.operations import use

        observed = ddg.copy()
        for op_id in list(observed.op_ids):
            observed.new_operation(
                OpCode.STORE, (use(op_id),), tag=f"obs{op_id}"
            )
        assert_unroll_equivalent(observed, factor, iterations_u=4)


class TestDMSChainEquivalence:
    def test_scheduled_graph_preserves_values(self):
        """After DMS inserts move chains, the final DDG must still
        compute what the pre-scheduling graph computed."""
        from repro.ir import LoopBuilder

        b = LoopBuilder("spread")
        loads = [b.load(f"x{j}") for j in range(8)]
        for j in range(4):
            b.store(b.add(loads[j], loads[j + 4]), f"y{j}")
        loop = b.build()
        before = loop.ddg.copy()
        result = DistributedModuloScheduler(clustered_vliw(8)).schedule(
            loop.ddg.copy()
        )
        assert_same_semantics(before, result.ddg, iterations=6)

    @pytest.mark.parametrize("name", ["fir_filter", "lms_update"])
    def test_kernels_survive_scheduling(self, name):
        base = make_kernel(name).ddg
        prepared = single_use_ddg(base)
        result = DistributedModuloScheduler(clustered_vliw(6)).schedule(
            prepared.copy()
        )
        # base -> single-use -> DMS chains: still the same computation.
        assert_same_semantics(base, result.ddg, iterations=8)
