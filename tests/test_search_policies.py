"""Regression suite for the II-search policy layer (``scheduling/search``).

Four concerns:

* **Corpus II equality** — over the same case matrix the golden
  fingerprint suite pins (full kernel suite x {ring, linear, mesh,
  crossbar} x {2, 4, 8} clusters plus the unrolled extras and the IMS
  reference points), the default ``adaptive`` policy must return exactly
  the II the reference ``ladder`` returns, and every schedule it emits
  must pass the differential execution oracle.
* **Policy semantics** — scripted fake runners pin the walk order, the
  gallop/bisect/confirm interplay and the minimality guarantee without
  paying for real scheduling.
* **Overflow** — ``IIOverflowError`` carries the right fields under all
  three policies.
* **Stats accounting** — aggregate :class:`SchedulerStats` equal the sum
  over the attempt log under every policy (the portfolio must tally each
  fanned attempt exactly once, no double counting of the winner).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import CompilationRequest, Toolchain
from repro.config import SchedulerConfig
from repro.errors import IIOverflowError, ReproError, SchedulingError
from repro.ir.transforms import single_use_ddg, unroll_ddg
from repro.machine import clustered_vliw, unclustered_vliw
from repro.scheduling import (
    SEARCH_POLICY_NAMES,
    AttemptOutcome,
    AttemptRunner,
    DistributedModuloScheduler,
    IterativeModuloScheduler,
    SchedulerStats,
    get_search_policy,
    schedule_fingerprint,
)
from repro.scheduling.schedule import Placement
from repro.validate import verify_compiled
from repro.workloads import KERNELS, make_kernel

from ._fingerprint_cases import (
    CLUSTER_COUNTS,
    IMS_CASES,
    TOPOLOGIES,
    UNROLLED_CASES,
)

TOOLCHAIN = Toolchain.default()


# ----------------------------------------------------------------------
# Corpus: adaptive II == ladder II, schedules oracle-clean
# ----------------------------------------------------------------------


def _corpus_cases():
    cases = []
    for kernel in sorted(KERNELS):
        for topology in TOPOLOGIES:
            for k in CLUSTER_COUNTS:
                cases.append(
                    (f"{kernel}/{topology}-{k}", kernel, {}, 1, topology, k)
                )
    for label, kernel, kwargs, unroll, topology, k in UNROLLED_CASES:
        cases.append((label, kernel, kwargs, unroll, topology, k))
    for label, kernel, unroll, k in IMS_CASES:
        cases.append((label, kernel, {}, unroll, None, k))
    return cases


CORPUS = _corpus_cases()


def _compile(search, kernel, kwargs, unroll, topology, k):
    """(II | error-class-name, compiled-or-None) under one policy."""
    machine = (
        unclustered_vliw(k)
        if topology is None
        else clustered_vliw(k, topology=topology)
    )
    request = CompilationRequest(
        loop=make_kernel(kernel, **kwargs),
        machine=machine,
        unroll=unroll,
        config=SchedulerConfig(search=search),
    )
    try:
        report = TOOLCHAIN.compile(request)
    except ReproError as err:
        return type(err).__name__, None
    return report.result.ii, report.compiled


@pytest.mark.parametrize(
    "label,kernel,kwargs,unroll,topology,k",
    CORPUS,
    ids=[case[0] for case in CORPUS],
)
def test_adaptive_matches_ladder_ii_and_is_oracle_clean(
    label, kernel, kwargs, unroll, topology, k
):
    ladder_ii, _ = _compile("ladder", kernel, kwargs, unroll, topology, k)
    adaptive_ii, compiled = _compile(
        "adaptive", kernel, kwargs, unroll, topology, k
    )
    assert adaptive_ii == ladder_ii, (
        f"{label}: adaptive II {adaptive_ii!r} != ladder II {ladder_ii!r}"
    )
    if compiled is not None:
        report = verify_compiled(compiled)
        assert report.ok, (
            f"{label}: oracle rejected the adaptive schedule: "
            f"{report.all_problems[:3]}"
        )


# ----------------------------------------------------------------------
# Scripted runners: policy semantics without real scheduling
# ----------------------------------------------------------------------


class ScriptedRunner(AttemptRunner):
    """Attempt runner whose outcomes are a scripted feasibility table."""

    def __init__(self, feasible, restarts=3, budget_per_attempt=10):
        self.loop_name = "scripted"
        self.restarts_per_rung = restarts
        self._feasible = set(feasible)  # {(ii, salt), ...}
        self._budget = budget_per_attempt
        self.ddg = make_kernel("dot_product").ddg  # any real graph
        self.calls = []

    def run(self, ii, salt, limits=None, evidence=None):
        self.calls.append((ii, salt))
        ok = (ii, salt) in self._feasible
        stats = SchedulerStats(budget_used=self._budget, placements=self._budget)
        return AttemptOutcome(
            ii=ii,
            salt=salt,
            placements={0: Placement(0, 0)} if ok else None,
            work=self.ddg,
            stats=stats,
        )


@dataclasses.dataclass
class _Bounds:
    mii: int = 4


SMALL_CONFIG = SchedulerConfig(max_ii_factor=1, max_ii_extra=8)


class TestPolicySemantics:
    def test_ladder_walks_rung_major(self):
        runner = ScriptedRunner(feasible={(6, 1)})
        outcome = get_search_policy("ladder").search(runner, 4, SMALL_CONFIG)
        assert outcome.ii == 6
        assert runner.calls == [
            (4, 0), (4, 1), (4, 2), (5, 0), (5, 1), (5, 2), (6, 0), (6, 1)
        ]
        assert outcome.trajectory == (4, 5, 6)

    @pytest.mark.parametrize("policy", SEARCH_POLICY_NAMES)
    def test_all_policies_agree_on_minimal_ii(self, policy):
        for feasible in (
            {(4, 0)},               # first probe wins
            {(4, 2)},               # ladder needs the last salt at MII
            {(7, 0), (9, 0)},       # answer beyond a galloped gap
            {(6, 1), (8, 0)},       # salt-1 rung below a salt-0 rung
            {(12, 0)},              # top of the range
        ):
            runner = ScriptedRunner(feasible)
            config = SMALL_CONFIG.with_(search_workers=1)
            outcome = get_search_policy(policy).search(runner, 4, config)
            expected = min(ii for ii, _ in feasible)
            assert outcome.ii == expected, (policy, feasible)
            assert outcome.trajectory[-1] == expected
            assert outcome.stats.ii_attempts == len(set(outcome.trajectory))

    def test_adaptive_skips_restarts_above_the_answer(self):
        # Everything fails below 9; salt 0 succeeds at 9.  The adaptive
        # search must not burn salts 1-2 at rung 9 (the ladder would not
        # have either) and must fully refute every rung below.
        runner = ScriptedRunner(feasible={(9, 0), (10, 0), (11, 0), (12, 0)})
        outcome = get_search_policy("adaptive").search(runner, 4, SMALL_CONFIG)
        assert outcome.ii == 9
        assert (9, 1) not in runner.calls and (9, 2) not in runner.calls
        for rung in range(4, 9):
            for salt in range(3):
                assert (rung, salt) in runner.calls

    def test_adaptive_trajectory_ends_at_result(self):
        runner = ScriptedRunner(feasible={(8, 0), (12, 0)})
        outcome = get_search_policy("adaptive").search(runner, 4, SMALL_CONFIG)
        assert outcome.ii == 8
        assert outcome.trajectory[-1] == 8
        assert len(outcome.trajectory) == len(set(outcome.trajectory))

    def test_unknown_policy_rejected(self):
        with pytest.raises(SchedulingError, match="unknown search policy"):
            get_search_policy("simulated-annealing")
        with pytest.raises(SchedulingError, match="unknown search policy"):
            SchedulerConfig(search="simulated-annealing")


# ----------------------------------------------------------------------
# IIOverflowError under every policy
# ----------------------------------------------------------------------


class TestOverflow:
    @pytest.mark.parametrize("policy", SEARCH_POLICY_NAMES)
    def test_scripted_overflow_fields(self, policy):
        runner = ScriptedRunner(feasible=set())
        config = SMALL_CONFIG.with_(search_workers=1)
        with pytest.raises(IIOverflowError) as excinfo:
            get_search_policy(policy).search(runner, 4, config)
        assert excinfo.value.loop_name == "scripted"
        assert excinfo.value.max_ii == config.max_ii(4) == 12

    @pytest.mark.parametrize("policy", SEARCH_POLICY_NAMES)
    def test_real_scheduler_overflow_or_valid_schedule(self, policy):
        # A saturated 2-cluster machine with a one-rung II window and a
        # single-placement budget: either the lone rung works first try
        # (then the schedule must validate) or every policy must surface
        # IIOverflowError with the machine's ceiling.
        from repro.scheduling import validate_schedule
        from .test_dms_backtracking import spread_loop

        config = SchedulerConfig(
            max_ii_factor=1,
            max_ii_extra=0,
            budget_ratio=1,
            restarts_per_ii=1,
            search=policy,
            search_workers=1,
        )
        scheduler = DistributedModuloScheduler(clustered_vliw(2), config=config)
        loop = spread_loop(pairs=6)
        try:
            result = scheduler.schedule(loop.ddg.copy())
            validate_schedule(result)
        except IIOverflowError as err:
            assert err.max_ii >= 1
            assert err.loop_name == loop.ddg.name


# ----------------------------------------------------------------------
# Stats accounting invariants
# ----------------------------------------------------------------------

#: Counters that must equal the exact sum over the attempt log.
_SUMMED_FIELDS = (
    "placements",
    "budget_used",
    "futility_aborts",
    "ejections_resource",
    "ejections_dependence",
    "ejections_communication",
    "ejections_chain",
    "chains_built",
    "chains_dismantled",
    "moves_inserted",
    "moves_removed",
    "strategy1",
    "strategy2",
    "strategy3",
)


def _check_accounting(outcome):
    log = outcome.attempt_log
    assert outcome.stats.restart_attempts == len(log)
    assert outcome.stats.ii_attempts == len({rec.ii for rec in log})
    for name in _SUMMED_FIELDS:
        total = sum(getattr(rec.stats, name) for rec in log)
        assert getattr(outcome.stats, name) == total, name
    # Per-attempt records must not themselves carry aggregate counters.
    assert all(rec.stats.ii_attempts == 0 for rec in log)
    assert all(rec.stats.restart_attempts == 0 for rec in log)


class TestStatsAccounting:
    @pytest.mark.parametrize("policy", SEARCH_POLICY_NAMES)
    def test_dms_stats_sum_across_rungs(self, policy):
        from repro.scheduling import compute_mii

        ddg = single_use_ddg(unroll_ddg(make_kernel("fir_filter", taps=8).ddg, 2))
        config = SchedulerConfig(search=policy, search_workers=1)
        machine = clustered_vliw(4)
        scheduler = DistributedModuloScheduler(machine, config=config)
        mii = compute_mii(ddg, machine, scheduler.latencies).mii
        outcome = get_search_policy(policy).search(
            scheduler.attempt_runner(ddg.copy()), mii, config
        )
        _check_accounting(outcome)

    @pytest.mark.parametrize("policy", SEARCH_POLICY_NAMES)
    def test_ims_stats_sum_across_rungs(self, policy):
        from repro.scheduling import compute_mii

        ddg = unroll_ddg(make_kernel("fir_filter", taps=8).ddg, 4)
        config = SchedulerConfig(search=policy, search_workers=1)
        machine = unclustered_vliw(2)
        scheduler = IterativeModuloScheduler(machine, config=config)
        mii = compute_mii(ddg, machine, scheduler.latencies).mii
        outcome = get_search_policy(policy).search(
            scheduler.attempt_runner(ddg), mii, config
        )
        _check_accounting(outcome)

    def test_scheduler_result_stats_match_policy_outcome(self):
        ddg = single_use_ddg(make_kernel("lms_update", taps=4).ddg)
        config = SchedulerConfig(search="adaptive")
        result = DistributedModuloScheduler(
            clustered_vliw(4), config=config
        ).schedule(ddg.copy())
        stats = result.stats
        assert stats.restart_attempts >= stats.ii_attempts >= 1
        assert stats.placements <= stats.budget_used
        assert result.ii_trajectory[-1] == result.ii


# ----------------------------------------------------------------------
# Portfolio: identical results, exactly-once tallying
# ----------------------------------------------------------------------


class TestPortfolio:
    def test_portfolio_matches_ladder_bit_for_bit_serial(self):
        ddg = single_use_ddg(make_kernel("complex_multiply").ddg)
        fingerprints = {}
        for policy in ("ladder", "portfolio"):
            config = SchedulerConfig(search=policy, search_workers=1)
            result = DistributedModuloScheduler(
                clustered_vliw(8), config=config
            ).schedule(ddg.copy())
            fingerprints[policy] = schedule_fingerprint(result)
        assert fingerprints["portfolio"] == fingerprints["ladder"]

    def test_portfolio_matches_ladder_bit_for_bit_pooled(self):
        ddg = single_use_ddg(make_kernel("fir_filter", taps=6).ddg)
        fingerprints = {}
        for policy, workers in (("ladder", None), ("portfolio", 2)):
            config = SchedulerConfig(search=policy, search_workers=workers)
            result = DistributedModuloScheduler(
                clustered_vliw(4), config=config
            ).schedule(ddg.copy())
            fingerprints[policy] = schedule_fingerprint(result)
        assert fingerprints["portfolio"] == fingerprints["ladder"]

    def test_portfolio_tallies_every_salt_once(self):
        # One infeasible rung forces a full fan-out before the success.
        runner = ScriptedRunner(feasible={(5, 0), (5, 1)})
        config = SMALL_CONFIG.with_(search_workers=1)
        outcome = get_search_policy("portfolio").search(runner, 4, config)
        assert outcome.ii == 5
        # All three salts of both rungs ran, each tallied exactly once.
        assert sorted(runner.calls) == [
            (4, 0), (4, 1), (4, 2), (5, 0), (5, 1), (5, 2)
        ]
        _check_accounting(outcome)
        assert outcome.stats.budget_used == 6 * 10
