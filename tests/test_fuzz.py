"""The schedule-mutation fuzzer: mutations, contract, campaign, minimizer."""

import dataclasses

import numpy as np
import pytest

from repro.api import CompilationRequest, Toolchain
from repro.ir.edges import DepKind
from repro.machine import clustered_vliw
from repro.scheduling.checker import check_schedule
from repro.validate import FuzzConfig, MUTATIONS, run_fuzz
from repro.validate.fuzz import (
    FUZZ_SPEC,
    Verdicts,
    contract_violations,
    evaluate,
    minimize_loop,
)
from repro.workloads import make_kernel
from repro.workloads.synthetic import SyntheticSpec, synthetic_loop


def compile_on(loop, machine):
    return Toolchain.default().compile(
        CompilationRequest(loop=loop, machine=machine, validate=False)
    ).compiled


@pytest.fixture(scope="module")
def compiled():
    return compile_on(make_kernel("fir_filter", taps=6), clustered_vliw(4))


class TestMutations:
    @pytest.mark.parametrize("name", sorted(MUTATIONS))
    def test_mutators_produce_describable_mutants(self, name, compiled):
        rng = np.random.default_rng(7)
        produced = MUTATIONS[name](rng, compiled.result)
        if produced is None:
            pytest.skip(f"{name} not applicable to this schedule")
        mutant, detail = produced
        assert detail
        assert mutant is not compiled.result

    def test_shift_changes_exactly_one_time(self, compiled):
        rng = np.random.default_rng(3)
        mutant, _ = MUTATIONS["shift"](rng, compiled.result)
        diffs = [
            op_id
            for op_id in compiled.result.placements
            if compiled.result.placements[op_id] != mutant.placements[op_id]
        ]
        assert len(diffs) == 1

    def test_tighten_edge_violates_the_checker(self, compiled):
        rng = np.random.default_rng(11)
        produced = MUTATIONS["tighten_edge"](rng, compiled.result)
        if produced is None:
            pytest.skip("victim edge too close to cycle 0")
        mutant, _ = produced
        assert not check_schedule(mutant).ok

    def test_shrink_queue_keeps_checker_quiet(self, compiled):
        rng = np.random.default_rng(5)
        produced = MUTATIONS["shrink_queue"](rng, compiled.result)
        if produced is None:
            pytest.skip("no cross-cluster lifetime deep enough to shrink")
        mutant, _ = produced
        # The checker has no capacity rule; simulator and oracle do.
        assert check_schedule(mutant).ok
        verdicts = evaluate(
            compiled.loop, compiled.unroll_factor, mutant
        )
        assert not verdicts.simulator_ok
        assert not verdicts.oracle_ok
        assert not contract_violations("shrink_queue", verdicts)


class TestContract:
    def _verdicts(self, c, s, o):
        return Verdicts(checker_ok=c, simulator_ok=s, oracle_ok=o)

    def test_baseline_requires_unanimous_accept(self):
        assert not contract_violations(None, self._verdicts(True, True, True))
        assert contract_violations(None, self._verdicts(False, True, True))
        assert contract_violations(None, self._verdicts(True, False, True))
        assert contract_violations(None, self._verdicts(True, True, False))

    def test_placement_clauses(self):
        ok = self._verdicts(True, True, True)
        assert not contract_violations("shift", ok)
        # All three reject: agreement.
        assert not contract_violations("shift", self._verdicts(False, False, False))
        # Checker rejects, oracle blind (mem edge): allowed.
        assert not contract_violations("shift", self._verdicts(False, False, True))
        # Checker accepts but a dynamic layer rejects: bug.
        assert contract_violations("shift", self._verdicts(True, False, True))
        assert contract_violations("shift", self._verdicts(True, True, False))
        # Checker rejects but the simulator accepts: missing mirror.
        assert contract_violations("shift", self._verdicts(False, True, True))

    def test_capacity_clauses(self):
        assert not contract_violations(
            "shrink_queue", self._verdicts(True, False, False)
        )
        assert not contract_violations(
            "shrink_queue", self._verdicts(True, True, True)
        )
        assert contract_violations(
            "shrink_queue", self._verdicts(True, True, False)
        )
        assert contract_violations(
            "shrink_queue", self._verdicts(False, False, False)
        )

    def test_unknown_mutation_rejected(self):
        with pytest.raises(ValueError):
            contract_violations("nonsense", self._verdicts(True, True, True))


class TestCampaign:
    def test_seeded_campaign_agrees(self):
        report = run_fuzz(
            FuzzConfig(seed=1999, trials=8, mutants_per_trial=6, minimize=False)
        )
        assert report.ok, [d.to_dict() for d in report.disagreements]
        assert report.trials_run == 8
        assert report.mutants_run > 0

    def test_campaign_is_deterministic(self):
        config = FuzzConfig(seed=42, trials=4, mutants_per_trial=4, minimize=False)
        a = run_fuzz(config).to_dict()
        b = run_fuzz(config).to_dict()
        a.pop("elapsed_seconds")
        b.pop("elapsed_seconds")
        assert a == b

    def test_time_budget_stops_early(self):
        report = run_fuzz(
            FuzzConfig(seed=1, trials=10_000, time_budget=0.0, minimize=False)
        )
        assert report.trials_run <= 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FuzzConfig(trials=0)
        with pytest.raises(ValueError):
            FuzzConfig(mutants_per_trial=-1)

    def test_report_serialises(self):
        import json

        report = run_fuzz(
            FuzzConfig(seed=2, trials=2, mutants_per_trial=2, minimize=False)
        )
        assert json.dumps(report.to_dict())


class TestFuzzPopulation:
    def test_default_spec_is_unchanged(self):
        """p_mem_dep defaults off and must not perturb the published
        surrogate population (golden suite stats depend on it)."""
        assert SyntheticSpec().p_mem_dep == 0.0
        a = synthetic_loop(5, seed=1999)
        b = synthetic_loop(5, seed=1999, spec=SyntheticSpec(p_mem_dep=0.0))
        assert a.ddg.pretty() == b.ddg.pretty()

    def test_fuzz_spec_emits_memory_edges(self):
        found = 0
        for index in range(30):
            loop = synthetic_loop(index, seed=7, spec=FUZZ_SPEC)
            found += sum(
                1 for e in loop.ddg.edges() if e.kind == DepKind.MEM
            )
        assert found > 0

    def test_mem_edges_do_not_change_flow_population(self):
        plain = synthetic_loop(3, seed=7)
        edged = synthetic_loop(3, seed=7, spec=FUZZ_SPEC)
        flows = lambda ddg: sorted(
            (e.src, e.dst, e.omega) for e in ddg.edges() if e.is_flow
        )
        assert flows(plain.ddg) == flows(edged.ddg)


class TestMinimizer:
    def test_minimizer_shrinks_to_smallest_failing_loop(self):
        loop = synthetic_loop(4, seed=123, spec=FUZZ_SPEC)
        stores = [
            op for op in loop.ddg.operations() if op.opcode.value == "store"
        ]
        if len(stores) < 2:
            pytest.skip("population sample has a single store")
        target = stores[0].op_id

        def still_fails(candidate):
            return any(
                op.op_id == target for op in candidate.ddg.operations()
            )

        minimized = minimize_loop(loop, still_fails)
        assert still_fails(minimized)
        assert len(minimized.ddg) < len(loop.ddg)
        remaining = [
            op
            for op in minimized.ddg.operations()
            if op.opcode.value == "store"
        ]
        assert len(remaining) == 1

    def test_minimizer_keeps_loop_valid(self):
        loop = synthetic_loop(9, seed=55, spec=FUZZ_SPEC)
        minimized = minimize_loop(loop, lambda candidate: True)
        minimized.ddg.validate()
        assert len(minimized.ddg) >= 1
