"""Property-based tests (hypothesis) on the core invariants.

Random DDGs are generated structurally (always valid: operands reference
earlier operations or loop-carried later ones), then pushed through the
transforms, both schedulers, the checker, the allocator and the simulator.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ir import DDG, DEFAULT_LATENCIES, OpCode, Operation, ValueUse
from repro.ir.transforms import max_fanout, single_use_ddg, unroll_ddg
from repro.machine import RingTopology, clustered_vliw, unclustered_vliw
from repro.registers import allocate_queues, extract_lifetimes
from repro.scheduling import (
    DistributedModuloScheduler,
    IterativeModuloScheduler,
    check_schedule,
    compute_mii,
    rec_mii,
)
from repro.simulator import simulate

_PRODUCING_OPS = [
    OpCode.LOAD,
    OpCode.ADD,
    OpCode.SUB,
    OpCode.MUL,
    OpCode.MIN,
    OpCode.MAX,
]

_settings = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_ddg(draw, min_ops=2, max_ops=14):
    """A structurally valid loop DDG with optional recurrences."""
    n = draw(st.integers(min_ops, max_ops))
    ddg = DDG("prop")
    rec_allowed = draw(st.booleans())
    for op_id in range(n):
        opcode = draw(st.sampled_from(_PRODUCING_OPS))
        srcs = []
        if opcode != OpCode.LOAD:
            arity = 2
            for _ in range(arity):
                choice = draw(st.integers(0, 3))
                if choice == 0 or op_id == 0:
                    srcs.append(ValueUse(None, 0, f"k{draw(st.integers(0, 5))}"))
                elif choice in (1, 2):
                    srcs.append(ValueUse(draw(st.integers(0, op_id - 1)), 0))
                else:
                    # Loop-carried reference, possibly forward (recurrence).
                    target = draw(st.integers(0, n - 1))
                    omega = draw(st.integers(1, 2))
                    if target >= op_id and not rec_allowed:
                        target = draw(st.integers(0, op_id - 1))
                        omega = draw(st.integers(0, 2))
                    srcs.append(ValueUse(target, omega))
        ddg.add_operation(Operation(op_id, opcode, tuple(srcs)))
    ddg.validate()
    return ddg


class TestTopologyProperties:
    @given(n=st.integers(1, 24), a=st.integers(0, 23), b=st.integers(0, 23))
    @_settings
    def test_distance_is_a_metric(self, n, a, b):
        ring = RingTopology(n)
        a, b = a % n, b % n
        assert ring.distance(a, b) == ring.distance(b, a)
        assert (ring.distance(a, b) == 0) == (a == b)
        assert ring.distance(a, b) <= n // 2

    @given(n=st.integers(2, 24), a=st.integers(0, 23), b=st.integers(0, 23))
    @_settings
    def test_paths_walk_adjacent_hops(self, n, a, b):
        ring = RingTopology(n)
        a, b = a % n, b % n
        for path in ring.paths(a, b):
            assert path.clusters[0] == a
            assert path.clusters[-1] == b
            for x, y in zip(path.clusters, path.clusters[1:]):
                assert ring.distance(x, y) == 1


class TestTransformProperties:
    @given(ddg=random_ddg(), u=st.integers(1, 5))
    @_settings
    def test_unroll_preserves_structure(self, ddg, u):
        unrolled = unroll_ddg(ddg, u)
        unrolled.validate()
        assert len(unrolled) == u * len(ddg)
        assert unrolled.n_useful_ops() == u * ddg.n_useful_ops()
        # Unrolling cannot create a recurrence out of nothing.
        assert unrolled.has_recurrence() == ddg.has_recurrence()

    @given(ddg=random_ddg())
    @_settings
    def test_single_use_caps_fanout(self, ddg):
        transformed = single_use_ddg(ddg)
        transformed.validate()
        assert max_fanout(transformed) <= 2
        assert transformed.n_useful_ops() == ddg.n_useful_ops()

    @given(ddg=random_ddg(), u=st.integers(1, 4))
    @_settings
    def test_scaled_rec_mii_matches_unrolled(self, ddg, u):
        scaled = rec_mii(ddg, DEFAULT_LATENCIES, unroll=u)
        real = rec_mii(unroll_ddg(ddg, u), DEFAULT_LATENCIES)
        assert scaled == real


class TestSchedulerProperties:
    @given(ddg=random_ddg(), k=st.integers(1, 3))
    @_settings
    def test_ims_schedules_validate(self, ddg, k):
        result = IterativeModuloScheduler(unclustered_vliw(k)).schedule(
            ddg.copy()
        )
        report = check_schedule(result)
        assert report.ok, report.problems
        assert result.ii >= compute_mii(
            ddg, result.machine, DEFAULT_LATENCIES
        ).mii

    @given(ddg=random_ddg(), clusters=st.integers(1, 8))
    @_settings
    def test_dms_schedules_validate(self, ddg, clusters):
        prepared = single_use_ddg(ddg) if clusters > 1 else ddg.copy()
        result = DistributedModuloScheduler(clustered_vliw(clusters)).schedule(
            prepared
        )
        report = check_schedule(result)
        assert report.ok, report.problems

    @given(ddg=random_ddg(max_ops=10), clusters=st.integers(2, 6))
    @_settings
    def test_dms_schedules_simulate_and_allocate(self, ddg, clusters):
        result = DistributedModuloScheduler(clustered_vliw(clusters)).schedule(
            single_use_ddg(ddg)
        )
        allocation = allocate_queues(result)
        sim = simulate(result, iterations=4, allocation=None, strict=True)
        assert sim.ok
        # Queue depths computed statically bound the simulated occupancy.
        static_depth = max(
            (lt.depth for lt in extract_lifetimes(result)), default=0
        )
        assert sim.max_queue_occupancy <= max(static_depth, 1) + 1

    @given(ddg=random_ddg(max_ops=8))
    @_settings
    def test_dms_single_cluster_matches_ims_ii(self, ddg):
        ims = IterativeModuloScheduler(unclustered_vliw(1)).schedule(ddg.copy())
        dms = DistributedModuloScheduler(clustered_vliw(1)).schedule(ddg.copy())
        assert dms.ii == ims.ii

    @given(ddg=random_ddg(max_ops=10), clusters=st.integers(2, 6))
    @_settings
    def test_dms_on_linear_arrays_validates(self, ddg, clusters):
        machine = clustered_vliw(clusters, topology="linear")
        result = DistributedModuloScheduler(machine).schedule(
            single_use_ddg(ddg)
        )
        report = check_schedule(result)
        assert report.ok, report.problems

    @given(ddg=random_ddg(max_ops=10), clusters=st.integers(1, 6))
    @_settings
    def test_two_phase_schedules_validate(self, ddg, clusters):
        from repro.scheduling import TwoPhaseScheduler

        prepared = single_use_ddg(ddg) if clusters > 1 else ddg.copy()
        result = TwoPhaseScheduler(clustered_vliw(clusters)).schedule(prepared)
        report = check_schedule(result)
        assert report.ok, report.problems
