"""Focused tests of DMS's strategy selection and cluster preference."""

import pytest

from repro.config import SchedulerConfig
from repro.ir import DEFAULT_LATENCIES, LoopBuilder, OpCode
from repro.ir.transforms import single_use_ddg
from repro.machine import ClusterSpec, MachineSpec, clustered_vliw
from repro.scheduling import DistributedModuloScheduler, validate_schedule

from .conftest import build_stream_loop


class TestCapabilityFiltering:
    def test_heterogeneous_clusters(self):
        # Cluster 1 has no multiplier and no L/S: everything that needs
        # them must land elsewhere, with communication still legal.
        machine = MachineSpec(
            name="hetero",
            clusters=(
                ClusterSpec(mem=1, alu=1, mul=1, copy=1),
                ClusterSpec(mem=0, alu=2, mul=0, copy=1),
                ClusterSpec(mem=1, alu=1, mul=1, copy=1),
            ),
        )
        loop = build_stream_loop()
        result = DistributedModuloScheduler(machine).schedule(loop.ddg.copy())
        validate_schedule(result)
        for op in result.ddg.operations():
            placement = result.placements[op.op_id]
            assert machine.fu_in_cluster(placement.cluster, op.fu_kind) >= 1

    def test_mul_only_island(self):
        # A machine where multipliers exist only on cluster 2.
        machine = MachineSpec(
            name="mul-island",
            clusters=(
                ClusterSpec(mem=2, alu=1, mul=0, copy=1),
                ClusterSpec(mem=1, alu=2, mul=0, copy=1),
                ClusterSpec(mem=0, alu=0, mul=2, copy=1),
                ClusterSpec(mem=1, alu=1, mul=0, copy=1),
            ),
        )
        loop = build_stream_loop()
        result = DistributedModuloScheduler(machine).schedule(loop.ddg.copy())
        validate_schedule(result)
        muls = [
            result.placements[op.op_id].cluster
            for op in result.ddg.operations()
            if op.opcode == OpCode.MUL
        ]
        assert set(muls) == {2}


class TestStrategySelection:
    def test_easy_loops_never_reach_strategy3(self):
        loop = build_stream_loop()
        result = DistributedModuloScheduler(clustered_vliw(4)).schedule(
            loop.ddg.copy()
        )
        assert result.stats.strategy3 == 0

    def test_strategy2_requires_no_compatible_cluster(self):
        # A loop whose structure spreads producers far apart on a wide
        # ring: chains appear; everything still validates.
        b = LoopBuilder("wide_join")
        loads = [b.load(f"x{j}") for j in range(12)]
        for j in range(6):
            b.store(b.add(loads[j], loads[j + 6]), f"y{j}")
        loop = b.build()
        result = DistributedModuloScheduler(clustered_vliw(12)).schedule(
            loop.ddg.copy()
        )
        validate_schedule(result)
        if result.stats.strategy2:
            assert result.stats.chains_built >= 1

    def test_strategy_counts_sum_to_placements(self):
        loop = build_stream_loop()
        result = DistributedModuloScheduler(clustered_vliw(4)).schedule(
            loop.ddg.copy()
        )
        stats = result.stats
        assert (
            stats.strategy1 + stats.strategy2 + stats.strategy3
            == stats.placements
        )


class TestDeterminismAcrossConfigs:
    @pytest.mark.parametrize("clusters", [3, 5, 7])
    def test_same_input_same_schedule(self, clusters):
        loop = build_stream_loop()
        first = DistributedModuloScheduler(clustered_vliw(clusters)).schedule(
            loop.ddg.copy()
        )
        second = DistributedModuloScheduler(clustered_vliw(clusters)).schedule(
            loop.ddg.copy()
        )
        assert first.placements == second.placements
        assert first.stats.budget_used == second.stats.budget_used

    def test_salt_changes_exploration_not_validity(self):
        from repro.workloads import make_kernel

        loop = make_kernel("complex_multiply")
        ddg = single_use_ddg(loop.ddg)
        for restarts in (1, 2, 5):
            config = SchedulerConfig(restarts_per_ii=restarts)
            result = DistributedModuloScheduler(
                clustered_vliw(8), DEFAULT_LATENCIES, config
            ).schedule(ddg.copy())
            validate_schedule(result)
