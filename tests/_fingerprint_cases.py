"""Shared case matrix for the golden schedule-fingerprint suite.

Used by ``tests/test_perf_fingerprints.py`` (assert) and
``tests/gen_golden_fingerprints.py`` (regenerate).  The matrix covers the
full kernel suite crossed with every registered point-symmetric topology
and {2, 4, 8} clusters, plus unrolled (graph-mutating, chain-heavy)
DMS cases and an IMS reference point, so both schedulers' emitted
schedules are pinned bit-for-bit.

The cases pin the ``ladder`` search policy explicitly: the goldens were
generated under the seed's exhaustive II walk, which the ladder policy
reproduces bit-for-bit regardless of the session default.  The default
(``adaptive``) policy is pinned separately — II equality with the ladder
plus oracle-clean schedules over this same corpus — by
``tests/test_search_policies.py``.
"""

from __future__ import annotations

import os
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.config import SchedulerConfig
from repro.errors import ReproError
from repro.ir.opcodes import DEFAULT_LATENCIES
from repro.ir.transforms import single_use_ddg, unroll_ddg
from repro.machine import clustered_vliw, unclustered_vliw
from repro.scheduling import DistributedModuloScheduler, IterativeModuloScheduler
from repro.scheduling.fingerprint import schedule_fingerprint
from repro.workloads import KERNELS, make_kernel

#: The reference search order the goldens were generated under.
LADDER_CONFIG = SchedulerConfig(search="ladder")

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "golden_fingerprints.json")

TOPOLOGIES = ("ring", "linear", "mesh", "crossbar")
CLUSTER_COUNTS = (2, 4, 8)

#: Mutation-heavy extras: (label, kernel, kwargs, unroll, topology, k).
UNROLLED_CASES: Tuple[Tuple[str, str, dict, int, str, int], ...] = (
    ("unroll4-ring4", "fir_filter", {"taps": 8}, 4, "ring", 4),
    ("unroll4-linear8", "fir_filter", {"taps": 8}, 4, "linear", 8),
    ("unroll8-ring4", "dot_product", {}, 8, "ring", 4),
    ("unroll2-mesh8", "lms_update", {"taps": 4}, 2, "mesh", 8),
)

#: IMS reference points: (label, kernel, unroll, k).
IMS_CASES: Tuple[Tuple[str, str, int, int], ...] = (
    ("ims-unroll4-k4", "fir_filter", 4, 4),
    ("ims-plain-k2", "lms_update", 1, 2),
)


def iter_cases() -> List[Tuple[str, Callable[[], str]]]:
    """All (case_name, thunk) pairs; each thunk returns a fingerprint."""
    cases: List[Tuple[str, Callable[[], str]]] = []

    def dms_case(kernel: str, kwargs: dict, unroll: int, topology: str, k: int):
        def thunk() -> str:
            ddg = make_kernel(kernel, **kwargs).ddg
            if unroll > 1:
                ddg = unroll_ddg(ddg, unroll)
            ddg = single_use_ddg(ddg)
            machine = clustered_vliw(k, topology=topology)
            result = DistributedModuloScheduler(
                machine, DEFAULT_LATENCIES, LADDER_CONFIG
            ).schedule(ddg)
            return schedule_fingerprint(result)

        return thunk

    for kernel in sorted(KERNELS):
        for topology in TOPOLOGIES:
            for k in CLUSTER_COUNTS:
                name = f"{kernel}/{topology}-{k}"
                cases.append((name, dms_case(kernel, {}, 1, topology, k)))
    for label, kernel, kwargs, unroll, topology, k in UNROLLED_CASES:
        cases.append((label, dms_case(kernel, kwargs, unroll, topology, k)))
    for label, kernel, unroll, k in IMS_CASES:

        def ims_thunk(kernel=kernel, unroll=unroll, k=k) -> str:
            ddg = make_kernel(kernel).ddg
            if unroll > 1:
                ddg = unroll_ddg(ddg, unroll)
            machine = unclustered_vliw(k)
            result = IterativeModuloScheduler(
                machine, DEFAULT_LATENCIES, LADDER_CONFIG
            ).schedule(ddg)
            return schedule_fingerprint(result)

        cases.append((label, ims_thunk))
    return cases


def compute_fingerprint(thunk: Callable[[], str]) -> str:
    """Run one case; scheduling failures fingerprint as the error class."""
    try:
        return thunk()
    except ReproError as err:
        return f"error:{type(err).__name__}"


def compute_all_fingerprints(progress: bool = False) -> Dict[str, str]:
    fingerprints: Dict[str, str] = {}
    cases = iter_cases()
    for index, (name, thunk) in enumerate(cases):
        fingerprints[name] = compute_fingerprint(thunk)
        if progress and (index + 1) % 50 == 0:
            print(f"  {index + 1}/{len(cases)}", file=sys.stderr)
    return fingerprints
