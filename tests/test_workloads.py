"""Tests for kernels, the synthetic generator and the surrogate suite."""

import pytest

from repro.errors import WorkloadError
from repro.ir.transforms import ddg_stats
from repro.workloads import (
    KERNELS,
    PERFECT_CLUB_LOOP_COUNT,
    SyntheticSpec,
    make_kernel,
    perfect_club_surrogate,
    split_sets,
    suite_stats,
    synthetic_loop,
)


class TestKernels:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_every_kernel_builds_and_validates(self, name):
        loop = make_kernel(name)
        loop.ddg.validate()
        assert loop.n_ops >= 1
        assert loop.trip_count >= 1

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_vectorizable_flag_matches_graph(self, name):
        loop = make_kernel(name)
        assert KERNELS[name].vectorizable == loop.is_vectorizable

    def test_fir_taps_parameter(self):
        small = make_kernel("fir_filter", taps=3)
        large = make_kernel("fir_filter", taps=10)
        assert large.n_ops > small.n_ops
        # Load reuse: fan-out of the sample load equals the tap count.
        assert large.ddg.flow_fanout(0) == 10

    def test_fir_requires_two_taps(self):
        with pytest.raises(WorkloadError):
            make_kernel("fir_filter", taps=1)

    def test_lms_recurrences_couple_through_error(self):
        # Every weight update reads the shared error term, which reads
        # every weight: one large strongly connected component.
        loop = make_kernel("lms_update", taps=4)
        sccs = loop.ddg.sccs()
        assert len(sccs) == 1
        assert len(sccs[0]) >= 2 * 4  # products + updates for 4 taps
        assert not loop.is_vectorizable

    def test_euclidean_norm_duplicate_operand(self):
        loop = make_kernel("euclidean_norm")
        assert loop.ddg.flow_fanout(0) == 2  # x used twice by the square

    def test_unknown_kernel(self):
        with pytest.raises(WorkloadError):
            make_kernel("fizzbuzz")


class TestSynthetic:
    def test_deterministic(self):
        a = synthetic_loop(7, seed=42)
        b = synthetic_loop(7, seed=42)
        assert a.ddg.op_ids == b.ddg.op_ids
        assert [op.opcode for op in a.ddg.operations()] == [
            op.opcode for op in b.ddg.operations()
        ]

    def test_different_indexes_differ(self):
        a = synthetic_loop(1, seed=42)
        b = synthetic_loop(2, seed=42)
        assert (
            a.n_ops != b.n_ops
            or [op.opcode for op in a.ddg.operations()]
            != [op.opcode for op in b.ddg.operations()]
        )

    @pytest.mark.parametrize("index", range(0, 40, 7))
    def test_generated_loops_validate(self, index):
        loop = synthetic_loop(index, seed=3)
        loop.ddg.validate()
        assert loop.trip_count >= SyntheticSpec().min_trip

    def test_recurrence_fraction_controllable(self):
        none = SyntheticSpec(p_recurrent_loop=0.0)
        all_ = SyntheticSpec(p_recurrent_loop=1.0)
        vec = [synthetic_loop(i, seed=5, spec=none).is_vectorizable for i in range(30)]
        rec = [synthetic_loop(i, seed=5, spec=all_).is_vectorizable for i in range(30)]
        assert all(vec)
        assert not any(rec)

    def test_invalid_spec(self):
        with pytest.raises(WorkloadError):
            SyntheticSpec(p_recurrent_loop=1.5)
        with pytest.raises(WorkloadError):
            SyntheticSpec(min_trip=0)


class TestSuite:
    def test_default_size_matches_paper(self):
        # Only check the constant; building 1258 loops is done in the CLI
        # and benchmarks.
        assert PERFECT_CLUB_LOOP_COUNT == 1258

    def test_suite_is_deterministic(self):
        a = perfect_club_surrogate(30, seed=11)
        b = perfect_club_surrogate(30, seed=11)
        assert [l.name for l in a] == [l.name for l in b]
        assert [l.n_ops for l in a] == [l.n_ops for l in b]

    def test_unique_names(self):
        loops = perfect_club_surrogate(60, seed=2)
        names = [l.name for l in loops]
        assert len(names) == len(set(names))

    def test_sets_split(self):
        loops = perfect_club_surrogate(50, seed=2)
        set1, set2 = split_sets(loops)
        assert len(set1) == 50
        assert 0 < len(set2) < 50
        assert all(l.is_vectorizable for l in set2)

    def test_vectorizable_share_plausible(self):
        loops = perfect_club_surrogate(150, seed=1999)
        stats = suite_stats(loops)
        # Scientific inner loops: a solid majority vectorizable.
        assert 0.4 <= stats.vectorizable_fraction <= 0.8

    def test_op_mix_plausible(self):
        loops = perfect_club_surrogate(150, seed=1999)
        stats = suite_stats(loops)
        assert 0.2 <= stats.fu_mix["mem"] <= 0.5
        assert stats.fu_mix["alu"] >= 0.15
        assert stats.fu_mix["mul"] >= 0.15
        assert stats.fu_mix["copy"] == 0.0  # copies only appear post-transform

    def test_stats_totals(self):
        loops = perfect_club_surrogate(25, seed=4)
        stats = suite_stats(loops)
        assert stats.n_loops == 25
        assert stats.total_ops == sum(l.n_ops for l in loops)
        assert stats.max_ops == max(l.n_ops for l in loops)

    def test_empty_suite_rejected(self):
        with pytest.raises(WorkloadError):
            suite_stats([])
        with pytest.raises(WorkloadError):
            perfect_club_surrogate(0)

    def test_all_loops_validate(self):
        for loop in perfect_club_surrogate(40, seed=9):
            loop.ddg.validate()
            assert ddg_stats(loop.ddg).n_ops == loop.n_ops
