"""Tests for the bi-directional ring topology."""

import pytest

from repro.errors import MachineError
from repro.machine import RingTopology


class TestDistance:
    def test_single_cluster(self):
        ring = RingTopology(1)
        assert ring.distance(0, 0) == 0
        assert ring.neighbors(0) == ()

    def test_two_clusters(self):
        ring = RingTopology(2)
        assert ring.distance(0, 1) == 1
        assert ring.neighbors(0) == (1,)

    def test_wraparound(self):
        ring = RingTopology(8)
        assert ring.distance(0, 7) == 1
        assert ring.distance(1, 6) == 3
        assert ring.distance(0, 4) == 4

    def test_symmetry(self):
        ring = RingTopology(7)
        for a in range(7):
            for b in range(7):
                assert ring.distance(a, b) == ring.distance(b, a)

    def test_triangle_inequality(self):
        ring = RingTopology(9)
        for a in range(9):
            for b in range(9):
                for c in range(9):
                    assert ring.distance(a, c) <= ring.distance(a, b) + ring.distance(b, c)

    def test_adjacency_is_distance_at_most_one(self):
        ring = RingTopology(6)
        assert ring.adjacent(2, 2)
        assert ring.adjacent(2, 3)
        assert ring.adjacent(0, 5)
        assert not ring.adjacent(0, 2)

    def test_three_cluster_ring_is_fully_connected(self):
        # The paper: "no communication conflicts occur" for 2-3 clusters.
        ring = RingTopology(3)
        for a in range(3):
            for b in range(3):
                assert ring.adjacent(a, b)

    def test_out_of_range_rejected(self):
        ring = RingTopology(4)
        with pytest.raises(MachineError):
            ring.distance(0, 4)
        with pytest.raises(MachineError):
            ring.neighbors(-1)

    def test_invalid_size_rejected(self):
        with pytest.raises(MachineError):
            RingTopology(0)


class TestPaths:
    def test_trivial_path(self):
        ring = RingTopology(5)
        paths = ring.paths(2, 2)
        assert len(paths) == 1
        assert paths[0].clusters == (2,)
        assert paths[0].n_moves == 0

    def test_two_directions(self):
        ring = RingTopology(6)
        paths = ring.paths(0, 3)
        assert len(paths) == 2
        hops = sorted(p.hops for p in paths)
        assert hops == [3, 3]
        sequences = {p.clusters for p in paths}
        assert (0, 1, 2, 3) in sequences
        assert (0, 5, 4, 3) in sequences

    def test_move_counts(self):
        ring = RingTopology(8)
        short, long_ = ring.paths(0, 2)
        assert short.hops == 2 and short.n_moves == 1
        assert long_.hops == 6 and long_.n_moves == 5
        assert short.intermediates == (1,)

    def test_two_cluster_ring_single_path(self):
        ring = RingTopology(2)
        paths = ring.paths(0, 1)
        assert len(paths) == 1
        assert paths[0].hops == 1

    def test_paths_sorted_shortest_first(self):
        ring = RingTopology(10)
        paths = ring.paths(1, 4)
        assert paths[0].hops <= paths[1].hops

    def test_path_direction_walks(self):
        ring = RingTopology(5)
        path = ring.path(3, 1, 1)
        assert path.clusters == (3, 4, 0, 1)
        path = ring.path(3, 1, -1)
        assert path.clusters == (3, 2, 1)

    def test_invalid_direction(self):
        ring = RingTopology(4)
        with pytest.raises(MachineError):
            ring.path(0, 1, 2)

    def test_directed_pairs_cover_both_directions(self):
        ring = RingTopology(4)
        pairs = ring.directed_pairs()
        assert (0, 1) in pairs and (1, 0) in pairs
        assert (0, 3) in pairs and (3, 0) in pairs
        assert len(pairs) == 8  # 4 adjacent pairs x 2 directions
