"""Golden-fingerprint suite: the scheduler hot-path overhaul must be
behaviour-preserving.

Every case runs the full pipeline (kernel -> [unroll] -> single-use ->
DMS/IMS) and hashes the *complete* outcome — final DDG (moves included),
II and every placement — via
:func:`repro.scheduling.fingerprint.schedule_fingerprint`.  The expected
values in ``tests/data/golden_fingerprints.json`` were generated with the
pre-optimization scheduler (PR2 tree), so a pass proves the optimized
scheduler emits bit-identical schedules over the full kernel suite x
{ring, linear, mesh, crossbar} x {2, 4, 8} clusters plus the unrolled
chain-heavy extras and the IMS reference points.

Regenerate (only for an *intended* schedule change) with::

    PYTHONPATH=src python tests/gen_golden_fingerprints.py
"""

import json
import os

import pytest

from ._fingerprint_cases import GOLDEN_PATH, compute_fingerprint, iter_cases


def _load_golden():
    if not os.path.exists(GOLDEN_PATH):  # pragma: no cover - setup error
        pytest.fail(
            f"missing golden file {GOLDEN_PATH}; run "
            "tests/gen_golden_fingerprints.py"
        )
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


GOLDEN = _load_golden()
CASES = iter_cases()


def test_case_matrix_matches_golden_file():
    """Every golden case is produced and no case is silently dropped."""
    assert sorted(GOLDEN) == sorted(name for name, _ in CASES)


@pytest.mark.parametrize("name,thunk", CASES, ids=[name for name, _ in CASES])
def test_schedule_bit_identical(name, thunk):
    assert compute_fingerprint(thunk) == GOLDEN[name], (
        f"schedule for {name} differs from the pre-optimization reference; "
        "if the change is intentional, regenerate the golden file"
    )
