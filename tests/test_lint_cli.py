"""``repro lint`` CLI: exit codes, formats, baseline workflow, and the
meta-test that the committed tree itself lints clean."""

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).parents[1]


@pytest.fixture()
def project(tmp_path):
    """A miniature project with one determinism finding."""
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro.lint]\n"
        'paths = ["src"]\n'
        'determinism-paths = ["src"]\n'
        "api-paths = []\n"
    )
    src = tmp_path / "src"
    src.mkdir()
    (src / "mod.py").write_text(
        "import time\n\n\ndef stamp():\n    return time.time()\n"
    )
    return tmp_path


# ----------------------------------------------------------------------
# The tree gates itself
# ----------------------------------------------------------------------


def test_repo_is_clean_modulo_committed_baseline(capsys):
    """The CI gate on this very checkout: zero non-baselined findings."""
    assert main(["lint", "--root", str(REPO_ROOT), "--fail-on-new"]) == 0
    out = capsys.readouterr().out
    assert "0 new" in out


def test_repo_baseline_matches_tree_exactly(capsys):
    """No stale grandfathering: every baseline entry is still matched."""
    assert main(
        ["lint", "--root", str(REPO_ROOT), "--format", "json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["counts"]["resolved"] == 0
    assert payload["counts"]["baselined"] == len(payload["baselined"])


# ----------------------------------------------------------------------
# Exit codes and formats
# ----------------------------------------------------------------------


def test_fail_on_new_exits_1(project, capsys):
    assert main(["lint", "--root", str(project), "--fail-on-new"]) == 1
    assert "[determinism]" in capsys.readouterr().out


def test_report_only_exits_0(project):
    assert main(["lint", "--root", str(project)]) == 0


def test_json_format_and_out_file(project, capsys, tmp_path):
    out_file = tmp_path / "report.json"
    code = main(
        ["lint", "--root", str(project), "--format", "json",
         "--out", str(out_file)]
    )
    assert code == 0
    printed = json.loads(capsys.readouterr().out)
    written = json.loads(out_file.read_text())
    assert printed == written
    assert printed["counts"]["new"] == 1
    assert printed["new"][0]["rule"] == "determinism"


def test_rules_help_lists_all_rules(capsys):
    assert main(["lint", "--rules", "help"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "determinism", "async-blocking", "pool-safety", "cache-discipline",
        "exception-discipline", "resource-hygiene", "bad-suppression",
        "parse-error",
    ):
        assert rule_id in out


def test_unknown_rule_exits_2(capsys):
    assert main(["lint", "--rules", "no-such-rule"]) == 2
    assert "unknown lint rule" in capsys.readouterr().err


def test_rule_narrowing_runs_single_rule(project, capsys):
    assert main(
        ["lint", "--root", str(project), "--rules", "pool-safety",
         "--format", "json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["rules"] == ["pool-safety"]
    assert payload["counts"]["new"] == 0  # determinism rule not run


# ----------------------------------------------------------------------
# Baseline workflow
# ----------------------------------------------------------------------


def test_update_baseline_then_gate_passes(project, capsys):
    assert main(["lint", "--root", str(project), "--update-baseline"]) == 0
    assert "1 findings grandfathered" in capsys.readouterr().out
    assert (project / "LINT_baseline.json").exists()
    assert main(["lint", "--root", str(project), "--fail-on-new"]) == 0


def test_fixed_finding_reports_resolved(project, capsys):
    main(["lint", "--root", str(project), "--update-baseline"])
    (project / "src" / "mod.py").write_text("VALUE = 1\n")
    assert main(["lint", "--root", str(project), "--fail-on-new"]) == 0
    capsys.readouterr()
    assert main(
        ["lint", "--root", str(project), "--format", "json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["resolved"] == 1


def test_new_finding_on_top_of_baseline_fails(project, capsys):
    main(["lint", "--root", str(project), "--update-baseline"])
    (project / "src" / "other.py").write_text(
        "import uuid\n\n\ndef tag():\n    return uuid.uuid4()\n"
    )
    capsys.readouterr()
    assert main(["lint", "--root", str(project), "--fail-on-new"]) == 1
    out = capsys.readouterr().out
    assert "uuid.uuid4" in out and "1 new, 1 baselined" in out


def test_update_baseline_refuses_narrowed_rule_set(project, capsys):
    code = main(
        ["lint", "--root", str(project), "--rules", "determinism",
         "--update-baseline"]
    )
    assert code == 2
    assert "full rule set" in capsys.readouterr().err
