"""``repro lint`` CLI: exit codes, formats, baseline workflow, and the
meta-test that the committed tree itself lints clean."""

import json
import subprocess
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).parents[1]


@pytest.fixture()
def project(tmp_path):
    """A miniature project with one determinism finding."""
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro.lint]\n"
        'paths = ["src"]\n'
        'determinism-paths = ["src"]\n'
        "api-paths = []\n"
    )
    src = tmp_path / "src"
    src.mkdir()
    (src / "mod.py").write_text(
        "import time\n\n\ndef stamp():\n    return time.time()\n"
    )
    return tmp_path


# ----------------------------------------------------------------------
# The tree gates itself
# ----------------------------------------------------------------------


def test_repo_is_clean_modulo_committed_baseline(capsys):
    """The CI gate on this very checkout: zero non-baselined findings."""
    assert main(["lint", "--root", str(REPO_ROOT), "--fail-on-new"]) == 0
    out = capsys.readouterr().out
    assert "0 new" in out


def test_repo_baseline_matches_tree_exactly(capsys):
    """No stale grandfathering: every baseline entry is still matched."""
    assert main(
        ["lint", "--root", str(REPO_ROOT), "--format", "json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["counts"]["resolved"] == 0
    assert payload["counts"]["baselined"] == len(payload["baselined"])


def test_repo_baseline_is_burned_to_zero():
    """The committed baseline grandfathers nothing: the tree is clean
    on its own, not by debt."""
    payload = json.loads((REPO_ROOT / "LINT_baseline.json").read_text())
    assert payload["entries"] == {}


# ----------------------------------------------------------------------
# Exit codes and formats
# ----------------------------------------------------------------------


def test_fail_on_new_exits_1(project, capsys):
    assert main(["lint", "--root", str(project), "--fail-on-new"]) == 1
    assert "[determinism]" in capsys.readouterr().out


def test_report_only_exits_0(project):
    assert main(["lint", "--root", str(project)]) == 0


def test_json_format_and_out_file(project, capsys, tmp_path):
    out_file = tmp_path / "report.json"
    code = main(
        ["lint", "--root", str(project), "--format", "json",
         "--out", str(out_file)]
    )
    assert code == 0
    printed = json.loads(capsys.readouterr().out)
    written = json.loads(out_file.read_text())
    assert printed == written
    assert printed["counts"]["new"] == 1
    assert printed["new"][0]["rule"] == "determinism"


def test_sarif_format_is_valid_and_levelled(project, capsys):
    assert main(
        ["lint", "--root", str(project), "--format", "sarif"]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    results = run["results"]
    assert len(results) == 1
    (result,) = results
    assert result["ruleId"] == "determinism"
    assert result["level"] == "error"  # new finding gates the scan
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/mod.py"
    assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
    assert result["partialFingerprints"]["reproBaselineKey/v1"]
    assert any(r["id"] == "determinism" for r in run["tool"]["driver"]["rules"])


def test_sarif_demotes_baselined_findings_to_note(project, capsys):
    main(["lint", "--root", str(project), "--update-baseline"])
    capsys.readouterr()
    assert main(
        ["lint", "--root", str(project), "--format", "sarif"]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    (result,) = doc["runs"][0]["results"]
    assert result["level"] == "note"


def test_rules_help_lists_all_rules(capsys):
    assert main(["lint", "--rules", "help"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "determinism", "async-blocking", "pool-safety", "cache-discipline",
        "exception-discipline", "resource-hygiene", "bad-suppression",
        "parse-error", "async-atomicity", "determinism-taint",
        "spawn-picklability",
    ):
        assert rule_id in out


def test_unknown_rule_exits_2(capsys):
    assert main(["lint", "--rules", "no-such-rule"]) == 2
    assert "unknown lint rule" in capsys.readouterr().err


def test_rule_narrowing_runs_single_rule(project, capsys):
    assert main(
        ["lint", "--root", str(project), "--rules", "pool-safety",
         "--format", "json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["rules"] == ["pool-safety"]
    assert payload["counts"]["new"] == 0  # determinism rule not run


# ----------------------------------------------------------------------
# Baseline workflow
# ----------------------------------------------------------------------


def test_update_baseline_then_gate_passes(project, capsys):
    assert main(["lint", "--root", str(project), "--update-baseline"]) == 0
    assert "1 findings grandfathered" in capsys.readouterr().out
    assert (project / "LINT_baseline.json").exists()
    assert main(["lint", "--root", str(project), "--fail-on-new"]) == 0


def test_fixed_finding_reports_resolved(project, capsys):
    main(["lint", "--root", str(project), "--update-baseline"])
    (project / "src" / "mod.py").write_text("VALUE = 1\n")
    assert main(["lint", "--root", str(project), "--fail-on-new"]) == 0
    capsys.readouterr()
    assert main(
        ["lint", "--root", str(project), "--format", "json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["resolved"] == 1


def test_new_finding_on_top_of_baseline_fails(project, capsys):
    main(["lint", "--root", str(project), "--update-baseline"])
    (project / "src" / "other.py").write_text(
        "import uuid\n\n\ndef tag():\n    return uuid.uuid4()\n"
    )
    capsys.readouterr()
    assert main(["lint", "--root", str(project), "--fail-on-new"]) == 1
    out = capsys.readouterr().out
    assert "uuid.uuid4" in out and "1 new, 1 baselined" in out


def test_update_baseline_refuses_narrowed_rule_set(project, capsys):
    code = main(
        ["lint", "--root", str(project), "--rules", "determinism",
         "--update-baseline"]
    )
    assert code == 2
    assert "full rule set" in capsys.readouterr().err


def test_clean_tree_round_trips_an_empty_baseline(project, capsys):
    """Burning the baseline to zero leaves a loadable empty file, and
    the gate still passes against it."""
    (project / "src" / "mod.py").write_text("VALUE = 1\n")
    assert main(["lint", "--root", str(project), "--update-baseline"]) == 0
    assert "0 findings grandfathered" in capsys.readouterr().out
    payload = json.loads((project / "LINT_baseline.json").read_text())
    assert payload["entries"] == {}
    assert main(["lint", "--root", str(project), "--fail-on-new"]) == 0


# ----------------------------------------------------------------------
# --changed (git-diff-scoped runs)
# ----------------------------------------------------------------------


def _git(root, *argv):
    subprocess.run(
        ["git", "-c", "user.name=t", "-c", "user.email=t@t", *argv],
        cwd=str(root), check=True, capture_output=True,
    )


def test_changed_outside_git_checks_nothing(project, capsys):
    assert main(
        ["lint", "--root", str(project), "--changed", "--format", "json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 0


def test_changed_lints_only_the_diff(project, capsys):
    _git(project, "init", "-q")
    _git(project, "add", "-A")
    _git(project, "commit", "-q", "-m", "seed")
    # Untracked file with a fresh finding: the only thing --changed sees.
    (project / "src" / "other.py").write_text(
        "import uuid\n\n\ndef tag():\n    return uuid.uuid4()\n"
    )
    assert main(
        ["lint", "--root", str(project), "--changed", "--fail-on-new",
         "--format", "json"]
    ) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    assert payload["new"][0]["path"] == "src/other.py"
    # mod.py's committed finding is outside the subset.
    assert all(f["path"] != "src/mod.py" for f in payload["new"])


def test_changed_subset_never_reports_resolved_entries(project, capsys):
    main(["lint", "--root", str(project), "--update-baseline"])
    _git(project, "init", "-q")
    _git(project, "add", "-A")
    _git(project, "commit", "-q", "-m", "seed")
    (project / "src" / "other.py").write_text("VALUE = 1\n")
    capsys.readouterr()
    assert main(
        ["lint", "--root", str(project), "--changed", "--format", "json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    # mod.py's baselined finding was not re-scanned; declaring its
    # baseline entry stale from a partial view would be wrong.
    assert payload["counts"]["resolved"] == 0


def test_changed_refuses_update_baseline(project, capsys):
    code = main(
        ["lint", "--root", str(project), "--changed", "--update-baseline"]
    )
    assert code == 2
    assert "full run" in capsys.readouterr().err
