"""Tests for the dependence graph container."""

import pytest

from repro.errors import DDGError
from repro.ir import DDG, DEFAULT_LATENCIES, DepKind, OpCode, Operation, ValueUse, use
from repro.ir.edges import DepEdge


def two_op_graph():
    ddg = DDG("two")
    ddg.new_operation(OpCode.LOAD, tag="x")
    ddg.new_operation(OpCode.ADD, (use(0), ValueUse(None, 0, "k")))
    return ddg


class TestConstruction:
    def test_flow_edges_derive_from_operands(self):
        ddg = two_op_graph()
        edges = ddg.out_edges(0)
        assert len(edges) == 1
        assert edges[0].is_flow
        assert edges[0].dst == 1

    def test_external_operands_create_no_edges(self):
        ddg = two_op_graph()
        assert ddg.n_edges == 1

    def test_duplicate_id_rejected(self):
        ddg = two_op_graph()
        with pytest.raises(DDGError):
            ddg.add_operation(Operation(0, OpCode.LOAD))

    def test_forward_references_resolve(self):
        ddg = DDG("fwd")
        # Consumer added before its loop-carried producer.
        ddg.add_operation(Operation(0, OpCode.ADD, (use(1, 1),)))
        ddg.add_operation(Operation(1, OpCode.LOAD))
        assert any(e.src == 1 and e.dst == 0 for e in ddg.in_edges(0))

    def test_bulk_matches_incremental(self):
        ops = [
            Operation(0, OpCode.LOAD),
            Operation(1, OpCode.ADD, (use(0), use(0))),
            Operation(2, OpCode.STORE, (use(1),)),
        ]
        bulk = DDG.bulk("b", ops)
        incremental = DDG("i")
        for op in ops:
            incremental.add_operation(op)
        assert bulk.op_ids == incremental.op_ids
        assert [e.key for e in bulk.edges()] == [e.key for e in incremental.edges()]

    def test_self_reference_creates_self_loop(self):
        ddg = DDG("self")
        ddg.add_operation(Operation(0, OpCode.ADD, (use(0, 1), ValueUse(None, 0, "x"))))
        assert any(e.src == 0 and e.dst == 0 for e in ddg.out_edges(0))
        assert ddg.has_recurrence()


class TestExplicitEdges:
    def test_mem_edge_roundtrip(self):
        ddg = DDG("mem")
        ddg.new_operation(OpCode.STORE, (ValueUse(None, 0, "v"),))
        ddg.new_operation(OpCode.LOAD)
        edge = ddg.add_dep(0, 1, DepKind.MEM, omega=0, latency=1)
        assert edge in ddg.out_edges(0)
        ddg.remove_dep(edge)
        assert not ddg.out_edges(0)

    def test_flow_edges_cannot_be_explicit(self):
        ddg = two_op_graph()
        with pytest.raises(DDGError):
            ddg.add_dep(0, 1, DepKind.FLOW)

    def test_explicit_edge_requires_known_ops(self):
        ddg = two_op_graph()
        with pytest.raises(DDGError):
            ddg.add_dep(0, 99, DepKind.MEM, latency=1)


class TestMutation:
    def test_replace_operand_rewires_edges(self):
        ddg = DDG("rw")
        ddg.new_operation(OpCode.LOAD)
        ddg.new_operation(OpCode.LOAD)
        ddg.new_operation(OpCode.ADD, (use(0), use(1)))
        ddg.replace_operand(2, 0, use(1))
        assert not ddg.out_edges(0)
        assert len([e for e in ddg.out_edges(1) if e.dst == 2]) == 1

    def test_remove_referenced_op_rejected(self):
        ddg = two_op_graph()
        with pytest.raises(DDGError):
            ddg.remove_operation(0)

    def test_remove_leaf_op(self):
        ddg = two_op_graph()
        ddg.remove_operation(1)
        assert 1 not in ddg
        assert not ddg.out_edges(0)

    def test_copy_is_independent(self):
        ddg = two_op_graph()
        clone = ddg.copy()
        clone.new_operation(OpCode.STORE, (use(1),))
        assert len(clone) == 3
        assert len(ddg) == 2


class TestQueries:
    def test_flow_fanout_counts_references(self):
        ddg = DDG("fan")
        ddg.new_operation(OpCode.LOAD)
        ddg.new_operation(OpCode.MUL, (use(0), use(0)))  # x * x
        assert ddg.flow_fanout(0) == 2

    def test_fanout_distinguishes_omegas(self):
        ddg = DDG("fan2")
        ddg.new_operation(OpCode.LOAD)
        ddg.new_operation(OpCode.ADD, (use(0), use(0, 1)))
        # Two references (one current, one loop-carried) = fan-out 2.
        assert ddg.flow_fanout(0) == 2
        # ... but they are distinct edges because omega differs.
        assert len([e for e in ddg.out_edges(0)]) == 2

    def test_edge_latency_resolution(self):
        ddg = two_op_graph()
        flow = ddg.out_edges(0)[0]
        assert ddg.edge_latency(flow, DEFAULT_LATENCIES) == DEFAULT_LATENCIES[OpCode.LOAD]
        mem = DepEdge(0, 1, DepKind.MEM, 0, 5)
        assert ddg.edge_latency(mem, DEFAULT_LATENCIES) == 5

    def test_useful_op_count_excludes_copies(self):
        ddg = two_op_graph()
        ddg.new_operation(OpCode.COPY, (use(1),))
        assert len(ddg) == 3
        assert ddg.n_useful_ops() == 2

    def test_opcode_histogram(self):
        ddg = two_op_graph()
        hist = ddg.opcode_histogram()
        assert hist[OpCode.LOAD] == 1
        assert hist[OpCode.ADD] == 1


class TestStructure:
    def test_acyclic_graph_has_no_recurrence(self):
        assert not two_op_graph().has_recurrence()

    def test_sccs_find_recurrence_cycles(self):
        ddg = DDG("rec")
        ddg.add_operation(Operation(0, OpCode.LOAD))
        ddg.add_operation(Operation(1, OpCode.ADD, (use(0), use(1, 1))))
        sccs = ddg.sccs()
        assert sccs == [[1]]

    def test_multi_node_scc(self):
        ddg = DDG("rec2")
        ddg.add_operation(Operation(0, OpCode.ADD, (use(1, 1), ValueUse(None, 0, "a"))))
        ddg.add_operation(Operation(1, OpCode.MUL, (use(0), ValueUse(None, 0, "b"))))
        assert ddg.sccs() == [[0, 1]]

    def test_omega0_cycle_rejected(self):
        ddg = DDG("bad")
        ddg.add_operation(Operation(0, OpCode.ADD, (use(1),)))
        ddg.add_operation(Operation(1, OpCode.ADD, (use(0),)))
        with pytest.raises(DDGError):
            ddg.validate()

    def test_critical_path(self):
        ddg = DDG("cp")
        ddg.new_operation(OpCode.LOAD)  # latency 2
        ddg.new_operation(OpCode.MUL, (use(0), ValueUse(None, 0, "k")))  # 3
        ddg.new_operation(OpCode.STORE, (use(1),))  # 1
        assert ddg.critical_path_length(DEFAULT_LATENCIES) == 6

    def test_validate_accepts_good_graph(self):
        two_op_graph().validate()

    def test_validate_rejects_missing_producer(self):
        ddg = DDG("missing")
        ddg.add_operation(Operation(0, OpCode.ADD, (use(42),)))
        with pytest.raises(DDGError):
            ddg.validate()

    def test_validate_rejects_store_as_producer(self):
        ddg = DDG("storeval")
        ddg.new_operation(OpCode.STORE, (ValueUse(None, 0, "v"),))
        ddg.new_operation(OpCode.ADD, (use(0), ValueUse(None, 0, "k")))
        with pytest.raises(DDGError):
            ddg.validate()

    def test_pretty_and_summary(self):
        ddg = two_op_graph()
        assert "two" in ddg.summary()
        assert "load" in ddg.pretty()
