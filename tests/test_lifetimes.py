"""Tests for lifetime extraction and register pressure."""

import pytest

from repro.errors import AllocationError
from repro.ir import DEFAULT_LATENCIES, LoopBuilder, OpCode
from repro.machine import clustered_vliw, unclustered_vliw
from repro.machine.cqrf import CQRFId, LRFId
from repro.registers import extract_lifetimes, register_pressure
from repro.scheduling import DistributedModuloScheduler, IterativeModuloScheduler

from .conftest import build_reduction_loop, build_stream_loop


def ims_result(loop, k=2):
    return IterativeModuloScheduler(unclustered_vliw(k)).schedule(loop.ddg.copy())


def dms_result(loop, clusters=4):
    return DistributedModuloScheduler(clustered_vliw(clusters)).schedule(
        loop.ddg.copy()
    )


class TestExtraction:
    def test_one_lifetime_per_internal_reference(self):
        loop = build_stream_loop()  # v2=add(v0,v1), v3=mul(v2,k), v4=st(v3)
        result = ims_result(loop)
        lifetimes = extract_lifetimes(result)
        assert len(lifetimes) == 4  # add reads 2, mul reads 1, store reads 1

    def test_birth_death_ordering(self):
        result = ims_result(build_stream_loop())
        for lt in extract_lifetimes(result):
            assert lt.death >= lt.birth
            assert lt.duration == lt.death - lt.birth

    def test_loop_carried_lifetime_spans_iterations(self):
        loop = build_reduction_loop()
        result = ims_result(loop)
        carried = [
            lt for lt in extract_lifetimes(result) if lt.omega == 1
        ]
        assert carried
        for lt in carried:
            assert lt.death == result.placements[lt.consumer].time + result.ii

    def test_depth_counts_overlap(self):
        # A value read D cycles after writing overlaps floor(D/II)+1 copies.
        result = ims_result(build_stream_loop())
        for lt in extract_lifetimes(result):
            assert lt.depth == lt.duration // result.ii + 1
            assert lt.depth >= 1

    def test_file_routing(self):
        result = dms_result(build_stream_loop())
        for lt in extract_lifetimes(result):
            file_id = lt.file_id
            if lt.src_cluster == lt.dst_cluster:
                assert isinstance(file_id, LRFId)
            else:
                assert isinstance(file_id, CQRFId)
                assert file_id.writer == lt.src_cluster


class TestRegisterPressure:
    def test_pressure_positive(self):
        result = ims_result(build_stream_loop())
        assert register_pressure(result) >= 1

    def test_pressure_grows_with_width(self):
        # Wider machines overlap more iterations: MaxLive must not shrink.
        loop = build_stream_loop()
        narrow = register_pressure(ims_result(loop, k=1))
        wide = register_pressure(ims_result(loop, k=3))
        assert wide >= narrow or narrow - wide <= 1

    def test_pressure_counts_live_values_not_refs(self):
        b = LoopBuilder("twouse")
        x = b.load()
        b.store(b.add(x, "k1"), "a")
        b.store(b.add(x, "k2"), "b")
        loop = b.build()
        result = ims_result(loop, k=2)
        assert register_pressure(result) >= 1
