"""Batch/parallel compilation equivalence and warm-cache performance.

The acceptance property of the session redesign: fanning the kernel
suite across a process pool produces bit-identical schedules to per-loop
serial ``compile_loop``, and a warm cache answers the same sweep in a
small fraction of the cold wall-clock.

The full suite x k=1..10 sweep is genuinely expensive (DMS backtracking
on the widest rings dominates), so it runs exactly once per interpreter:
the module-scoped fixture holds the cold parallel run and its cache, and
every acceptance assertion reads from it.
"""

import time
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    CompilationRequest,
    Toolchain,
    compile_many,
    schedule_fingerprint,
)
from repro.errors import IIOverflowError, ReproError
from repro.machine import clustered_vliw, unclustered_vliw
from repro.scheduling.pipeline import compile_loop
from repro.workloads import KERNELS, make_kernel, perfect_club_surrogate

#: Full acceptance sweep: every kernel x every paper cluster count.
FULL_CLUSTER_RANGE = tuple(range(1, 11))


def _suite_requests(cluster_counts):
    return [
        CompilationRequest(
            loop=make_kernel(name),
            machine=clustered_vliw(k),
            equivalent_k=k,
            allocate=False,
        )
        for name in sorted(KERNELS)
        for k in cluster_counts
    ]


@pytest.fixture(scope="module")
def cold_sweep(tmp_path_factory):
    """One cold parallel run of KERNELS x k=1..10 into a fresh cache."""
    cache_dir = tmp_path_factory.mktemp("compile-cache")
    requests = _suite_requests(FULL_CLUSTER_RANGE)
    started = time.perf_counter()
    reports = compile_many(requests, workers=2, cache=cache_dir)
    seconds = time.perf_counter() - started
    return SimpleNamespace(
        requests=requests, reports=reports, seconds=seconds, cache_dir=cache_dir
    )


class TestParallelEqualsSerial:
    def test_full_kernel_suite_bit_identical(self, cold_sweep):
        """Parallel compile_many == per-loop compile_loop, whole sweep."""
        assert len(cold_sweep.reports) == len(KERNELS) * len(FULL_CLUSTER_RANGE)
        for request, report in zip(cold_sweep.requests, cold_sweep.reports):
            serial = compile_loop(
                request.loop,
                request.machine,
                equivalent_k=request.equivalent_k,
                allocate=False,
            )
            assert schedule_fingerprint(report.result) == schedule_fingerprint(
                serial.result
            ), f"{request.describe()} diverged between parallel and serial"
            assert report.compiled.unroll_factor == serial.unroll_factor

    def test_results_preserve_request_order(self, cold_sweep):
        for request, report in zip(cold_sweep.requests, cold_sweep.reports):
            assert report.result.loop_name == request.loop.name
            assert report.result.machine.name == request.machine.name

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        k=st.sampled_from(FULL_CLUSTER_RANGE),
    )
    def test_property_surrogate_loops_roundtrip(self, seed, k):
        """Any surrogate loop: toolchain == compile_loop, on both twins."""
        loop = perfect_club_surrogate(1, seed=seed)[0]
        for machine in (clustered_vliw(k), unclustered_vliw(k)):
            request = CompilationRequest(
                loop=loop, machine=machine, equivalent_k=k, allocate=False
            )
            report = Toolchain.default().compile(request)
            serial = compile_loop(loop, machine, equivalent_k=k, allocate=False)
            assert schedule_fingerprint(report.result) == schedule_fingerprint(
                serial.result
            )


class TestWarmCachePerformance:
    def test_warm_rerun_is_fast_and_identical(self, cold_sweep):
        started = time.perf_counter()
        warm = compile_many(cold_sweep.requests, cache=cold_sweep.cache_dir)
        warm_seconds = time.perf_counter() - started
        assert all(r.cache_hit for r in warm)
        for before, after in zip(cold_sweep.reports, warm):
            assert schedule_fingerprint(before.result) == schedule_fingerprint(
                after.result
            )
        # Acceptance: warm rerun in <10% of the cold wall-clock.
        assert warm_seconds < 0.1 * cold_sweep.seconds, (
            f"warm rerun took {warm_seconds:.3f}s vs cold {cold_sweep.seconds:.3f}s"
        )


class TestErrorPolicy:
    def _overflow_requests(self):
        # An II ceiling of exactly MII makes the two-phase baseline fail
        # on every loop whose achieved II exceeds its MII; on an 8-wide
        # ring that reliably includes several kernels.
        from repro.config import SchedulerConfig

        tight = SchedulerConfig(max_ii_factor=1, max_ii_extra=0)
        chain = Toolchain.default().with_pass("schedule", "schedule_two_phase")
        requests = [
            CompilationRequest(
                loop=make_kernel(name),
                machine=clustered_vliw(8),
                config=tight,
                equivalent_k=8,
                allocate=False,
            )
            for name in sorted(KERNELS)
        ]
        return chain, requests

    def test_return_errors_collects_failures(self):
        chain, requests = self._overflow_requests()
        outcomes = compile_many(requests, toolchain=chain, return_errors=True)
        assert len(outcomes) == len(requests)
        failures = [o for o in outcomes if isinstance(o, ReproError)]
        assert failures, "expected failures on the MII-tight config"
        assert any(isinstance(f, IIOverflowError) for f in failures)
        # Successes still come back as ordinary reports, in order.
        for request, outcome in zip(requests, outcomes):
            if not isinstance(outcome, ReproError):
                assert outcome.result.loop_name == request.loop.name

    def test_default_policy_raises(self):
        chain, requests = self._overflow_requests()
        with pytest.raises(ReproError):
            compile_many(requests, toolchain=chain)


class TestSweepIntegration:
    def test_parallel_sweep_equals_serial_sweep(self):
        from repro.experiments import SweepConfig, run_sweep

        loops = perfect_club_surrogate(6, seed=11)
        serial = run_sweep(loops, SweepConfig(cluster_counts=(1, 3)))
        parallel = run_sweep(loops, SweepConfig(cluster_counts=(1, 3), workers=2))
        assert serial == parallel
