"""Tests for content hashing and the on-disk compilation cache."""

import pickle

import pytest

from repro.api import (
    BatchCompiler,
    CompilationCache,
    CompilationRequest,
    Toolchain,
    content_hash,
    schedule_fingerprint,
)
from repro.config import SchedulerConfig
from repro.ir.opcodes import LatencyModel
from repro.machine import clustered_vliw, unclustered_vliw
from repro.workloads import make_kernel

from .conftest import build_stream_loop


def _request(**overrides):
    base = dict(
        loop=make_kernel("daxpy"),
        machine=clustered_vliw(4),
        equivalent_k=4,
        allocate=False,
    )
    base.update(overrides)
    return CompilationRequest(**base)


class TestContentHash:
    def test_deterministic_across_rebuilds(self):
        # Two independently built copies of the same kernel hash equal:
        # the hash depends on content, not object identity.
        assert content_hash(_request()) == content_hash(_request())

    def test_sensitive_to_machine(self):
        assert content_hash(_request()) != content_hash(
            _request(machine=clustered_vliw(6), equivalent_k=6)
        )
        assert content_hash(_request()) != content_hash(
            _request(machine=unclustered_vliw(4))
        )

    def test_sensitive_to_config_and_latencies(self):
        assert content_hash(_request()) != content_hash(
            _request(config=SchedulerConfig(restarts_per_ii=1))
        )
        assert content_hash(_request()) != content_hash(
            _request(latencies=LatencyModel(load=4))
        )

    def test_sensitive_to_request_knobs(self):
        base = content_hash(_request())
        assert base != content_hash(_request(unroll=2))
        assert base != content_hash(_request(allocate=True))
        assert base != content_hash(_request(scheduler="dms"))

    def test_sensitive_to_pipeline(self):
        # A default-toolchain entry must never answer for a different
        # pipeline (e.g. the two-phase baseline, or one with codegen).
        base = content_hash(_request())
        assert base == content_hash(
            _request(), pipeline=("unroll", "single_use", "schedule", "allocate")
        )
        assert base != content_hash(
            _request(),
            pipeline=("unroll", "single_use", "schedule_two_phase", "allocate"),
        )

    def test_sensitive_to_loop_content(self):
        assert content_hash(_request()) != content_hash(
            _request(loop=make_kernel("dot_product"))
        )
        assert content_hash(
            _request(loop=build_stream_loop(trip_count=64))
        ) != content_hash(_request(loop=build_stream_loop(trip_count=128)))


class TestCompilationCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = CompilationCache(tmp_path)
        request = _request()
        key = request.cache_key()
        assert cache.get(key) is None
        report = Toolchain.default().compile(request)
        cache.put(key, report)
        loaded = cache.get(key)
        assert loaded is not None
        assert loaded.cache_hit
        assert loaded.cache_key == key
        assert schedule_fingerprint(loaded.result) == schedule_fingerprint(
            report.result
        )
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.writes == 1
        assert len(cache) == 1

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = CompilationCache(tmp_path)
        request = _request()
        key = request.cache_key()
        cache.put(key, Toolchain.default().compile(request))
        cache.path_for(key).write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert not cache.path_for(key).exists()

    def test_foreign_pickle_degrades_to_miss(self, tmp_path):
        cache = CompilationCache(tmp_path)
        key = "ab" + "0" * 62
        cache.path_for(key).parent.mkdir(parents=True)
        cache.path_for(key).write_bytes(pickle.dumps({"not": "a report"}))
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = CompilationCache(tmp_path)
        for name in ("daxpy", "dot_product"):
            request = _request(loop=make_kernel(name))
            cache.put(request.cache_key(), Toolchain.default().compile(request))
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


class TestBatchCompilerCaching:
    def test_second_run_is_all_hits_and_identical(self, tmp_path):
        requests = [
            _request(loop=make_kernel(name), machine=clustered_vliw(k), equivalent_k=k)
            for name in ("daxpy", "fir_filter", "dot_product")
            for k in (2, 4)
        ]
        cold = BatchCompiler(cache=tmp_path).compile_many(requests)
        assert not any(r.cache_hit for r in cold)
        warm_compiler = BatchCompiler(cache=tmp_path)
        warm = warm_compiler.compile_many(requests)
        assert all(r.cache_hit for r in warm)
        assert warm_compiler.cache.stats.hits == len(requests)
        for before, after in zip(cold, warm):
            assert schedule_fingerprint(before.result) == schedule_fingerprint(
                after.result
            )

    def test_different_toolchains_never_share_entries(self, tmp_path):
        request = _request()
        BatchCompiler(cache=tmp_path).compile_many([request])
        two_phase = BatchCompiler(
            toolchain=Toolchain.default().with_pass(
                "schedule", "schedule_two_phase"
            ),
            cache=tmp_path,
        )
        report = two_phase.compile_many([request])[0]
        assert not report.cache_hit
        assert report.result.scheduler == "two-phase"
        assert len(two_phase.cache) == 2

    def test_cache_root_expands_user(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOME", str(tmp_path))
        cache = CompilationCache("~/cache/repro")
        assert cache.root == tmp_path / "cache" / "repro"
        assert cache.root.is_dir()

    def test_cache_shared_across_toolchain_but_keyed_on_request(self, tmp_path):
        compiler = BatchCompiler(cache=tmp_path)
        first = compiler.compile_many([_request()])
        second = compiler.compile_many([_request(scheduler="dms")])
        # Different knobs -> different keys -> no false sharing.
        assert not first[0].cache_hit
        assert not second[0].cache_hit
        assert len(compiler.cache) == 2
