"""determinism-taint fixture: nondeterministic flows into hash sinks.

Never imported — only parsed under a config that puts this file on the
determinism paths.  The marked lines are *sinks* reached by a tracked
value (the flow-sensitive rule reports where the value lands, not where
it was born); wall-clock source lines additionally carry the syntactic
``determinism`` marker, which stays responsible for the sampling site
itself.  The unmarked flows are the ones the old syntactic ban used to
force suppressions for: deadline arithmetic that only feeds
comparisons, and explicitly seeded generators.
"""

import hashlib
import random
import time


def stamp_ns():
    return time.monotonic_ns()  # ok here: flagged only if it lands in a sink


def digest(payload):
    return hashlib.sha256(payload).hexdigest()


def canonical(value):
    return ("%r" % value).encode()


def direct_flow(name):
    started = time.monotonic()
    tag = f"{started}:{name}"
    return hashlib.sha256(tag.encode())  # EXPECT: determinism-taint


def wall_clock_flow(name):
    now = time.time()  # EXPECT: determinism
    return hashlib.sha256(f"{now}:{name}".encode())  # EXPECT: determinism-taint


def through_helpers(name):
    # Interprocedural, both directions: stamp_ns() *returns* taint, and
    # digest() *forwards* its parameter into a sink.
    sample = stamp_ns()
    key = canonical(sample)
    return digest(key)  # EXPECT: determinism-taint


def hash_object_flow(items):
    state = hashlib.blake2b()
    started = time.monotonic()
    for item in items:
        state.update(canonical(item))  # ok: item is run-stable
    state.update(canonical(started))  # EXPECT: determinism-taint
    return state.hexdigest()


def rng_flow():
    draw = random.random()  # EXPECT: determinism
    return hashlib.sha256(canonical(draw))  # EXPECT: determinism-taint


def deadline_only(timeout, work):
    # The suppression-pressure case the syntactic ban used to hit:
    # monotonic deadline math whose truthiness never reaches a value.
    deadline = time.monotonic() + timeout
    done = []
    while time.monotonic() < deadline:
        done.append(work())
    return hashlib.sha256(canonical(len(done)))  # ok: count, not clock


def seeded_flow(seed, name):
    rng = random.Random(seed)
    salt = rng.random()  # ok: explicitly seeded generator is run-stable
    return hashlib.sha256(canonical((salt, name)))  # ok: seeded values
