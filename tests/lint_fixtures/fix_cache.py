"""cache-discipline fixture.

The test config guards class ``Table``: mutating ``_rows`` obliges the
method to invalidate ``_cache`` (directly, via a ``*version*`` bump, or
transitively through ``_invalidate``).
"""

from bisect import insort


class Table:
    def __init__(self):
        self._rows = {}
        self._order = []
        self._cache = None
        self._gen_version = 0  # ok: __init__ establishes, never invalidates

    def _invalidate(self):
        self._cache = None

    def insert(self, key, row):
        self._rows[key] = row  # ok: invalidates directly below
        self._cache = None

    def insert_sorted(self, key):
        insort(self._order, key)  # ok: _order is not a guarded attribute
        self._rows[key] = key  # ok: version bump below counts as invalidation
        self._gen_version += 1

    def remove(self, key):
        del self._rows[key]  # ok: transitive via _invalidate
        self._invalidate()

    def remove_many(self, keys):
        for key in keys:
            self.remove(key)  # ok: calls an invalidating method
        return len(keys)

    def forgot(self, key, row):
        self._rows[key] = row  # EXPECT: cache-discipline

    def forgot_append(self, key, row):
        self._rows.setdefault(key, []).append(row)  # EXPECT: cache-discipline

    def lookup(self, key):
        rows = self._rows  # ok: rebinding a local is a read, not a write
        return rows.get(key)


class Unguarded:
    def mutate(self, key, row):
        self._rows = {key: row}  # ok: class is not under a cache guard
