"""async-atomicity fixture: check-then-act across awaits.

Never imported — only parsed by the lint engine.  Every marked write
acts on shared ``self.*`` state whose justifying read went stale over
an ``await``; the unmarked variants show the accepted repairs
(re-validate after the await, hold a lock across the critical section,
or claim the value before suspending).
"""

import asyncio


class Daemon:
    def __init__(self):
        self.jobs = {}
        self.server = None
        self.generation = 0
        self.lock = asyncio.Lock()

    async def compile(self, job):
        await asyncio.sleep(0)
        return job

    async def admit(self, key, job):
        if key not in self.jobs:
            report = await self.compile(job)
            self.jobs[key] = report  # EXPECT: async-atomicity
        return self.jobs[key]

    async def admit_revalidated(self, key, job):
        if key not in self.jobs:
            report = await self.compile(job)
            if key not in self.jobs:  # re-check refreshes the read
                self.jobs[key] = report
        return self.jobs[key]

    async def admit_locked(self, key, job):
        async with self.lock:  # awaits under the lock do not stale
            if key not in self.jobs:
                report = await self.compile(job)
                self.jobs[key] = report
        return self.jobs[key]

    async def close(self):
        # The daemon-close shape this rule caught in bring-up: both of
        # two concurrent close() calls pass the None check, and the
        # later one writes a stale None after its suspension.
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
            self.server = None  # EXPECT: async-atomicity

    async def close_claimed(self):
        server, self.server = self.server, None  # claim before the await
        if server is not None:
            server.close()
            await server.wait_closed()

    async def bump(self):
        await asyncio.sleep(0)
        self.generation += 1  # ok: augmented read-modify-write is atomic
        return self.generation

    async def rollover(self):
        current = self.generation
        await asyncio.sleep(0)
        self.generation = current + 1  # EXPECT: async-atomicity

    async def set_fresh(self, value):
        await asyncio.sleep(0)
        self.generation = value  # ok: no read of it before the await
