"""spawn-picklability fixture: pool jobs that cannot cross the boundary.

Never imported — only parsed.  Spawn workers re-import their work
function by module + qualname; the marked submissions hand over
something that lookup cannot find (closures, lambdas, methods of local
classes).  Thread pools and unresolvable receivers stay silent: the
pickling contract is specific to the *process* boundary, and unknown
callables get the benefit of the doubt.
"""

import functools
from concurrent.futures import ThreadPoolExecutor

from repro.pools import spawn_pool


def module_level(x):
    return x + 1


as_lambda = lambda x: x * x


def submit_module_fn(values):
    with spawn_pool(2) as pool:
        return pool.submit(module_level, values)  # ok: module-level def


def submit_closure(values):
    offset = len(values)

    def shifted(x):
        return x + offset

    with spawn_pool(2) as pool:
        return pool.submit(shifted, 1)  # EXPECT: pool-safety, spawn-picklability


def submit_local_lambda():
    fn = lambda x: x
    with spawn_pool(2) as pool:
        return pool.submit(fn, 1)  # EXPECT: spawn-picklability


def submit_module_lambda(values):
    with spawn_pool(2) as pool:
        return pool.map(as_lambda, values)  # EXPECT: spawn-picklability


def submit_local_class_method():
    class Worker:
        def run(self):
            return 1

    worker = Worker()
    with spawn_pool(2) as pool:
        return pool.submit(worker.run)  # EXPECT: spawn-picklability


def submit_partial_of_closure(values):
    def combine(a, b):
        return a + b

    with spawn_pool(2) as pool:
        return pool.submit(functools.partial(combine, values))  # EXPECT: spawn-picklability


async def run_in_executor_closure(loop):
    def job():
        return 1

    with spawn_pool(2) as pool:
        return await loop.run_in_executor(pool, job)  # EXPECT: spawn-picklability


def thread_pool_is_exempt(values):
    with ThreadPoolExecutor() as workers:
        return workers.submit(lambda: values)  # ok: nothing pickles across a thread


def unknown_receiver(executor_like):
    def local(x):
        return x

    return executor_like.submit(local, 1)  # ok: receiver is not provably a pool
