"""Suppression-semantics fixture (no EXPECT scheme here: the engine
tests assert on this file's findings directly, because suppression
comments must stay exactly as written — a trailing marker would be
parsed as part of the justification)."""

import time


def inline_ok():
    return time.time()  # repro: lint-ignore[determinism]: display-only timing


def standalone_ok():
    # repro: lint-ignore[determinism]: wall time never reaches the schedule
    return time.time()


def unknown_rule():
    return time.time()  # repro: lint-ignore[not-a-rule]: typo in the id


def missing_why():
    return time.time()  # repro: lint-ignore[determinism]


def empty_ids():
    return time.time()  # repro: lint-ignore[]: nothing named
