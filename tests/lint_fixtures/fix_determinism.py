"""determinism fixture: every line with an EXPECT marker must fire.

Never imported — only parsed by the lint engine under a config that puts
this file on the determinism paths.
"""

import random
import time
import uuid as uid

import numpy as np
from time import perf_counter as tick


def timestamps():
    first = time.time()  # EXPECT: determinism
    second = tick()  # EXPECT: determinism
    return first, second


def deadlines(timeout):
    # Deadline math sampled on a determinism path (the service smoke's
    # old bug used the wall clock, which an NTP step can fire early or
    # hang): on these paths even the monotonic clocks are banned —
    # timing belongs one layer up, passed in as a value.
    expires = time.time() + timeout  # EXPECT: determinism
    remaining = time.monotonic() - timeout  # EXPECT: determinism
    while time.monotonic_ns() < remaining:  # EXPECT: determinism
        pass
    return expires


def randomness(seed):
    ambient = random.random()  # EXPECT: determinism
    shared = np.random.rand(4)  # EXPECT: determinism
    token = uid.uuid4()  # EXPECT: determinism
    rng = np.random.default_rng(seed)  # ok: explicitly seeded generator
    drawn = rng.standard_normal(4)
    local = random.Random(seed).random()  # ok: seeded generator object
    return ambient, shared, token, drawn, local


def orderings(ops):
    by_identity = sorted(ops, key=id)  # EXPECT: determinism
    salted = hash("node")  # EXPECT: determinism
    for op in {o.dest for o in ops}:  # EXPECT: determinism
        salted += op
    for op in sorted({o.dest for o in ops}):  # ok: sorted before iterating
        salted -= op
    by_name = sorted(ops, key=lambda o: o.dest)  # ok: value-based key
    return by_identity, salted, by_name
