"""determinism fixture: every line with an EXPECT marker must fire.

Never imported — only parsed by the lint engine under a config that puts
this file on the determinism paths.
"""

import random
import time
import uuid as uid

import numpy as np
from time import perf_counter as tick


def timestamps():
    first = time.time()  # EXPECT: determinism
    second = tick()  # ok: perf_counter is deadline material, not banned
    return first, second


def deadlines(timeout):
    # Wall clocks stay banned outright (an NTP step fires deadlines
    # early or hangs them, and a timestamp has no legitimate use on a
    # bit-identity path).  The monotonic clocks are *not* syntactically
    # banned any more: deadline arithmetic never reaches a result
    # value, and the flows that do are determinism-taint's job.
    expires = time.time() + timeout  # EXPECT: determinism
    remaining = time.monotonic() - timeout  # ok: deadline arithmetic
    while time.monotonic_ns() < remaining:  # ok: comparison only
        pass
    return expires


def randomness(seed):
    ambient = random.random()  # EXPECT: determinism
    shared = np.random.rand(4)  # EXPECT: determinism
    token = uid.uuid4()  # EXPECT: determinism
    rng = np.random.default_rng(seed)  # ok: explicitly seeded generator
    drawn = rng.standard_normal(4)
    local = random.Random(seed).random()  # ok: seeded generator object
    return ambient, shared, token, drawn, local


def orderings(ops):
    by_identity = sorted(ops, key=id)  # EXPECT: determinism
    salted = hash("node")  # EXPECT: determinism
    for op in {o.dest for o in ops}:  # EXPECT: determinism
        salted += op
    for op in sorted({o.dest for o in ops}):  # ok: sorted before iterating
        salted -= op
    by_name = sorted(ops, key=lambda o: o.dest)  # ok: value-based key
    return by_identity, salted, by_name
