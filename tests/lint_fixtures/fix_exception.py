"""exception-discipline fixture.

The test config puts this file on the API paths, so builtin raises are
findings while ``repro.errors`` types are not.
"""

from repro.errors import ReproError


def narrow(payload):
    try:
        return payload["kernel"]
    except KeyError:
        return None  # ok: narrow catch


def broad_with_reraise(handle):
    try:
        return handle.read()
    except Exception:
        handle.close()
        raise  # ok: cleanup then re-raise


def swallows(handle):
    try:
        return handle.read()
    except Exception:  # EXPECT: exception-discipline
        pass


def broad_in_tuple(handle):
    try:
        return handle.read()
    except (ValueError, Exception) as err:  # EXPECT: exception-discipline
        return str(err)


def bare(handle):
    try:
        return handle.read()
    except:  # EXPECT: exception-discipline
        return None


def typed_error(name):
    raise ReproError(f"unknown kernel {name!r}")  # ok: typed at the boundary


def builtin_error(name):
    raise ValueError(f"unknown kernel {name!r}")  # EXPECT: exception-discipline


def unfinished():
    raise NotImplementedError  # ok: allowed builtin


def reraise_variable(err):
    raise err  # ok: re-raising a caught variable
