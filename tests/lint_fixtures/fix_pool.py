"""pool-safety fixture: start methods and picklability of pool jobs."""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from multiprocessing import get_context

from repro.pools import spawn_pool


def _double(item):
    return item * 2


def fork_default(jobs):
    with ProcessPoolExecutor(max_workers=2) as pool:  # EXPECT: pool-safety
        return list(pool.map(_double, jobs))


def fork_explicit(jobs):
    ctx = get_context("fork")  # EXPECT: pool-safety
    pool = ProcessPoolExecutor(max_workers=2, mp_context=ctx)
    try:
        return list(pool.map(_double, jobs))
    finally:
        pool.shutdown()


def lambda_job(jobs):
    with spawn_pool(2) as pool:
        return list(pool.map(lambda item: item * 2, jobs))  # EXPECT: pool-safety, spawn-picklability


def nested_job(jobs):
    def helper(item):
        return item * 2

    with spawn_pool(2) as pool:
        return [pool.submit(helper, job) for job in jobs]  # EXPECT: pool-safety


def spawn_ok(jobs):
    with spawn_pool(2) as pool:  # ok: spawn context pinned
        return list(pool.map(_double, jobs))


def threads_ok(jobs):
    with ThreadPoolExecutor(max_workers=2) as workers:
        return list(workers.map(lambda item: item * 2, jobs))  # ok: no pickling
