"""resource-hygiene fixture: acquisition sites and their releases."""

import json
import subprocess
from concurrent.futures import ThreadPoolExecutor


def orphaned(path):
    return json.load(open(path))  # EXPECT: resource-hygiene


def leaked(path):
    handle = open(path)  # EXPECT: resource-hygiene
    return handle.read()


def stray_pool(jobs):
    workers = ThreadPoolExecutor(max_workers=2)  # EXPECT: resource-hygiene
    return [workers.submit(str, job) for job in jobs]


def with_block(path):
    with open(path) as handle:  # ok: context manager
        return handle.read()


def closed_in_finally(path):
    handle = open(path)  # ok: closed below
    try:
        return handle.read()
    finally:
        handle.close()


def ownership_escapes(path):
    handle = open(path)  # ok: returned; the caller owns it now
    return handle


def handed_off(path, registry):
    handle = open(path)  # ok: passed on; the registry owns it now
    registry.track(handle)


class Holder:
    def __init__(self, path):
        self.handle = open(path)  # ok: stored; close() owns the lifetime

    def close(self):
        self.handle.close()


def waited_child():
    proc = subprocess.Popen(["true"])  # ok: waited below
    proc.wait()
    return proc.returncode
