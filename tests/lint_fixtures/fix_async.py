"""async-blocking fixture: blocking idioms in and out of coroutines."""

import asyncio
import subprocess
import time
from pathlib import Path


def sync_code(path):
    time.sleep(0.1)  # ok: not on an event loop
    return Path(path).read_text()  # ok: sync function


async def blocking_service(path, pool, job):
    time.sleep(0.5)  # EXPECT: async-blocking
    subprocess.run(["true"])  # EXPECT: async-blocking
    Path(path).write_text("snapshot")  # EXPECT: async-blocking
    with open(path) as handle:  # EXPECT: async-blocking
        data = handle.read()
    report = pool.submit(job).result()  # EXPECT: async-blocking
    return data, report


async def offloaded_service(path, pool, job):
    loop = asyncio.get_running_loop()
    await asyncio.sleep(0.5)  # ok: async sleep
    data = await loop.run_in_executor(None, Path(path).read_text)  # ok
    report = await loop.run_in_executor(pool, job)  # ok: awaited future

    def flush(text):
        time.sleep(0.01)  # ok: sync helper runs wherever it is called
        return text

    return data, report, flush
