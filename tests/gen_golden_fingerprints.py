"""Regenerate the golden schedule-fingerprint file.

Run from the repo root::

    PYTHONPATH=src python tests/gen_golden_fingerprints.py

Only regenerate when a change is *intended* to alter emitted schedules
(new strategy, different tie-breaks, ...).  Pure performance work must
leave this file untouched — that is the whole point of the suite.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from _fingerprint_cases import compute_all_fingerprints, GOLDEN_PATH


def main() -> int:
    fingerprints = compute_all_fingerprints(progress=True)
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(fingerprints, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(fingerprints)} fingerprints to {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
