"""Tests for the scheduler configuration."""

import pytest

from repro.config import DEFAULT_CONFIG, SchedulerConfig
from repro.errors import SchedulingError


class TestValidation:
    def test_defaults_valid(self):
        assert DEFAULT_CONFIG.budget_ratio == 6

    def test_bad_budget(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(budget_ratio=0)

    def test_bad_ii_bounds(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(max_ii_factor=0)

    def test_bad_restarts(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(restarts_per_ii=0)

    def test_bad_single_use_strategy(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(single_use_strategy="mesh")

    def test_bad_unroll_cap(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(unroll_cap=0)


class TestBehaviour:
    def test_max_ii(self):
        config = SchedulerConfig(max_ii_factor=4, max_ii_extra=32)
        assert config.max_ii(1) == 33
        assert config.max_ii(20) == 80

    def test_with_override(self):
        modified = DEFAULT_CONFIG.with_(budget_ratio=12)
        assert modified.budget_ratio == 12
        assert DEFAULT_CONFIG.budget_ratio == 6  # original untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.budget_ratio = 9
