"""End-to-end integration: kernels through the full pipeline.

Every named kernel is compiled for a pair of machines, validated by the
checker, executed by the simulator, queue-allocated, and code-generated.
This is the closest thing to "the whole system, as a user would run it".
"""

import pytest

from repro.codegen import assembly_for, build_program
from repro.machine import clustered_vliw, unclustered_vliw
from repro.registers import allocate_queues, register_pressure
from repro.scheduling import validate_schedule
from repro.scheduling.pipeline import compile_loop
from repro.simulator import simulate
from repro.workloads import KERNELS, make_kernel


@pytest.mark.parametrize("name", sorted(KERNELS))
class TestKernelPipeline:
    def test_unclustered(self, name):
        loop = make_kernel(name)
        compiled = compile_loop(loop, unclustered_vliw(2), equivalent_k=2)
        validate_schedule(compiled.result)
        report = simulate(compiled.result, iterations=6)
        assert report.ok

    def test_clustered(self, name):
        loop = make_kernel(name)
        compiled = compile_loop(loop, clustered_vliw(4), equivalent_k=4)
        validate_schedule(compiled.result)
        assert compiled.allocation is not None
        assert compiled.allocation.fits
        report = simulate(
            compiled.result, iterations=6, allocation=compiled.allocation
        )
        assert report.ok
        program = build_program(compiled.result, compiled.allocation)
        assert program.kernel_ops == len(compiled.result.ddg)


class TestCrossChecks:
    @pytest.mark.parametrize("clusters", [2, 4, 6, 8])
    def test_ipc_never_exceeds_machine_width(self, clusters):
        loop = make_kernel("fir_filter", taps=8)
        compiled = compile_loop(
            loop, clustered_vliw(clusters), equivalent_k=clusters
        )
        assert compiled.ipc <= 3 * clusters

    def test_clustered_ii_at_least_unclustered(self):
        # DMS solves a strictly more constrained problem.
        for name in ("fir_filter", "iir_biquad", "rgb_to_yuv"):
            loop = make_kernel(name)
            unclustered = compile_loop(loop, unclustered_vliw(4), equivalent_k=4)
            clustered = compile_loop(loop, clustered_vliw(4), equivalent_k=4)
            assert clustered.result.ii >= unclustered.result.ii

    def test_register_pressure_grows_with_width(self):
        loop = make_kernel("rgb_to_yuv")
        narrow = compile_loop(loop, unclustered_vliw(1), equivalent_k=1)
        wide = compile_loop(loop, unclustered_vliw(6), equivalent_k=6)
        # The paper's premise: wide unclustered machines need much more
        # central register storage (overlapped iterations).
        assert register_pressure(wide.result) >= register_pressure(narrow.result)

    def test_assembly_roundtrip_mentions_all_clusters(self):
        loop = make_kernel("fir_filter", taps=8)
        compiled = compile_loop(loop, clustered_vliw(4), equivalent_k=4)
        text = assembly_for(compiled.result, compiled.allocation)
        used = {p.cluster for p in compiled.result.placements.values()}
        for cluster in used:
            assert f"c{cluster}." in text

    def test_simulator_matches_static_cycles(self):
        for name in ("dot_product", "stencil3", "complex_multiply"):
            loop = make_kernel(name)
            compiled = compile_loop(loop, clustered_vliw(3), equivalent_k=3)
            iterations = 12
            report = simulate(compiled.result, iterations)
            assert report.cycles_model == compiled.result.cycles(iterations)
            # Measured makespan within one drain latency of the model.
            assert abs(report.cycles_model - report.cycles_span) <= 12
