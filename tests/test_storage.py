"""Tests for the storage-requirements experiment (paper section 1)."""

import pytest

from repro.experiments import (
    StoragePoint,
    storage_point,
    storage_report,
    storage_sweep,
)
from repro.workloads import make_kernel, perfect_club_surrogate


@pytest.fixture(scope="module")
def points():
    loops = perfect_club_surrogate(6, seed=13)
    return storage_sweep(loops, cluster_counts=(1, 4, 8))


class TestStoragePoint:
    def test_single_kernel(self):
        point = storage_point(make_kernel("fir_filter", taps=6), 4)
        assert point.clusters == 4
        assert point.unclustered_maxlive >= 1
        assert point.lrf_queues_max >= 0
        assert point.largest_clustered_file >= 1

    def test_no_cqrfs_on_single_cluster(self):
        point = storage_point(make_kernel("daxpy"), 1)
        assert point.cqrf_queues_max == 0
        assert point.cqrf_depth_max == 0


class TestSweep:
    def test_point_count(self, points):
        assert len(points) == 6 * 3

    def test_maxlive_grows_with_width(self, points):
        """The paper's premise: central RF pressure scales with FUs."""
        def mean_maxlive(k):
            at_k = [p for p in points if p.clusters == k]
            return sum(p.unclustered_maxlive for p in at_k) / len(at_k)

        assert mean_maxlive(8) > mean_maxlive(1)

    def test_cluster_files_stay_small(self, points):
        """The clustered design's payoff: per-file demand stays bounded
        while the machine widens."""
        def mean_largest(k):
            at_k = [p for p in points if p.clusters == k]
            return sum(p.largest_clustered_file for p in at_k) / len(at_k)

        def mean_maxlive(k):
            at_k = [p for p in points if p.clusters == k]
            return sum(p.unclustered_maxlive for p in at_k) / len(at_k)

        # At 8 clusters, the biggest file any cluster owns is much
        # smaller than the monolithic register file would need to be.
        assert mean_largest(8) < mean_maxlive(8)


class TestReport:
    def test_report_shape(self, points):
        figure = storage_report(points)
        assert figure.x == [1.0, 4.0, 8.0]
        assert set(figure.series) == {
            "central_rf_maxlive",
            "largest_cluster_file",
            "cqrf_depth_max",
        }
        text = figure.render_table()
        assert "central_rf_maxlive" in text
