"""Tests for chain planning and application (DMS strategy 2)."""

import pytest

from repro.config import SchedulerConfig
from repro.ir import DDG, DEFAULT_LATENCIES, LoopBuilder, OpCode, use
from repro.ir.operations import Operation, external
from repro.machine import ClusterSpec, clustered_vliw
from repro.scheduling import (
    ChainPlanner,
    ChainRegistry,
    DistributedModuloScheduler,
    PartialSchedule,
    validate_schedule,
)
from repro.scheduling.chains import dismantle_chain


def far_pred_graph():
    """q = add(p1, p2) with the producers to be placed far apart."""
    ddg = DDG("far")
    ddg.add_operation(Operation(0, OpCode.LOAD, (), "p1"))
    ddg.add_operation(Operation(1, OpCode.LOAD, (), "p2"))
    ddg.add_operation(Operation(2, OpCode.ADD, (use(0), use(1)), "q"))
    return ddg


def planner_setup(ii=4, clusters=6, ddg=None):
    ddg = ddg or far_pred_graph()
    schedule = PartialSchedule(ddg, clustered_vliw(clusters), ii, DEFAULT_LATENCIES)
    planner = ChainPlanner(schedule, SchedulerConfig())
    return ddg, schedule, planner


class TestPlanning:
    def test_chain_free_clusters_are_not_planned(self):
        ddg, schedule, planner = planner_setup()
        schedule.place(0, 0, 0)
        schedule.place(1, 0, 1)
        # Clusters 0/1 need no chains (strategy-1 territory), so any plan
        # the planner produces targets a cluster with a far predecessor.
        plan = planner.plan(2)
        assert plan is None or plan.cluster not in (0, 1)

    def test_plan_bridges_far_predecessor(self):
        ddg, schedule, planner = planner_setup(clusters=6)
        schedule.place(0, 0, 0)
        schedule.place(1, 0, 3)
        plan = planner.plan(2)
        assert plan is not None
        assert len(plan.chains) == 1
        chain = plan.chains[0]
        assert chain.n_moves == 1  # distance 2 -> one intermediate cluster
        # The op lands adjacent to one producer and chains to the other.
        assert plan.cluster in (1, 2, 4, 5)

    def test_plan_respects_move_timing(self):
        ddg, schedule, planner = planner_setup(clusters=6, ii=3)
        schedule.place(0, 0, 0)
        schedule.place(1, 1, 3)
        plan = planner.plan(2)
        assert plan is not None
        chain = plan.chains[0]
        producer_time = schedule.time(chain.producer)
        # First move cannot issue before the producer's result is ready.
        assert chain.move_times[0] >= producer_time + 2  # load latency

    def test_plan_covers_both_far_preds(self):
        ddg, schedule, planner = planner_setup(clusters=8)
        schedule.place(0, 0, 0)
        schedule.place(1, 0, 4)
        plan = planner.plan(2)
        assert plan is not None
        # Wherever the op lands, at least one pred is > 1 away; all far
        # preds get chains.
        far = [c.producer for c in plan.chains]
        assert far  # at least one chain
        total_moves = plan.n_moves
        assert total_moves >= 1

    def test_no_plan_without_copy_units(self):
        ddg = far_pred_graph()
        machine = clustered_vliw(6, cluster=ClusterSpec(copy=0))
        schedule = PartialSchedule(ddg, machine, 4, DEFAULT_LATENCIES)
        planner = ChainPlanner(schedule, SchedulerConfig())
        schedule.place(0, 0, 0)
        schedule.place(1, 0, 3)
        assert planner.plan(2) is None

    def test_no_plan_when_copy_units_saturated(self):
        from repro.ir.opcodes import FUKind

        ddg, schedule, planner = planner_setup(clusters=5, ii=2)
        schedule.place(0, 0, 0)
        schedule.place(1, 0, 2)
        # Fill every Copy-FU slot of every cluster: no clean move slots.
        filler = 100
        for cluster in range(5):
            for row in range(2):
                schedule.mrt.place(filler, cluster, FUKind.COPY, row)
                filler += 1
        assert planner.plan(2) is None

    def test_mrt_state_unchanged_after_planning(self):
        ddg, schedule, planner = planner_setup(clusters=6)
        schedule.place(0, 0, 0)
        schedule.place(1, 0, 3)
        from repro.ir.opcodes import FUKind

        before = [schedule.free_slots(c, FUKind.COPY) for c in range(6)]
        planner.plan(2)
        after = [schedule.free_slots(c, FUKind.COPY) for c in range(6)]
        assert before == after


class TestApplication:
    def apply_plan(self, clusters=6):
        ddg, schedule, planner = planner_setup(clusters=clusters)
        schedule.place(0, 0, 0)
        schedule.place(1, 0, 3)
        plan = planner.plan(2)
        registry = ChainRegistry()
        chains = planner.apply(2, plan, registry)
        return ddg, schedule, registry, chains, plan

    def test_moves_inserted_and_scheduled(self):
        ddg, schedule, registry, chains, plan = self.apply_plan()
        for chain in chains:
            for move_id in chain.move_ids:
                assert ddg.op(move_id).opcode == OpCode.MOVE
                assert schedule.is_scheduled(move_id)

    def test_consumer_operand_rewired(self):
        ddg, schedule, registry, chains, plan = self.apply_plan()
        chain = chains[0]
        consumer = ddg.op(2)
        rewired = [s.producer for s in consumer.srcs]
        assert chain.move_ids[-1] in rewired

    def test_chain_is_ring_path(self):
        ddg, schedule, registry, chains, plan = self.apply_plan()
        chain = chains[0]
        clusters = [schedule.cluster(m) for m in chain.move_ids]
        assert tuple(clusters) == chain.path.intermediates

    def test_registry_tracks_membership(self):
        ddg, schedule, registry, chains, plan = self.apply_plan()
        chain = chains[0]
        assert registry.chain_of_move(chain.move_ids[0]) == chain
        assert chain in registry.membership(chain.producer)
        assert chain in registry.membership(2)

    def test_dismantle_restores_graph(self):
        ddg, schedule, registry, chains, plan = self.apply_plan()
        chain = chains[0]
        n_ops_before = len(ddg)
        dismantle_chain(chain, schedule, registry)
        assert len(ddg) == n_ops_before - chain.n_moves
        consumer = ddg.op(2)
        producers = sorted(s.producer for s in consumer.srcs)
        assert producers == [0, 1]
        assert registry.n_live == 0
        for move_id in chain.move_ids:
            assert move_id not in ddg


class TestEndToEnd:
    def test_forced_far_communication_uses_chains(self):
        # Eight parallel loads combined pairwise across the ring: some
        # adds must bridge indirectly connected clusters.
        b = LoopBuilder("spread")
        loads = [b.load(f"x{j}") for j in range(8)]
        for j in range(4):
            b.store(b.add(loads[j], loads[j + 4]), f"y{j}")
        loop = b.build()
        scheduler = DistributedModuloScheduler(clustered_vliw(8))
        result = scheduler.schedule(loop.ddg.copy())
        validate_schedule(result)
        # Whatever the placement, the schedule must be communication-clean
        # (checker verifies) and any chains must appear in the stats.
        assert result.stats.strategy1 > 0

    def test_surviving_moves_execute_on_copy_units(self):
        b = LoopBuilder("spread2")
        loads = [b.load(f"x{j}") for j in range(10)]
        for j in range(5):
            b.store(b.add(loads[j], loads[j + 5]), f"y{j}")
        loop = b.build()
        scheduler = DistributedModuloScheduler(clustered_vliw(10))
        result = scheduler.schedule(loop.ddg.copy())
        validate_schedule(result)
        for op in result.ddg.operations():
            if op.opcode == OpCode.MOVE:
                placement = result.placements[op.op_id]
                capacity = result.machine.fu_in_cluster(
                    placement.cluster, op.fu_kind
                )
                assert capacity >= 1
