"""Tests for the modulo reservation table."""

import pytest

from repro.errors import SchedulingError
from repro.ir import FUKind
from repro.machine import ClusterSpec, clustered_vliw, unclustered_vliw
from repro.scheduling import ModuloReservationTable


def mrt(ii=4, clusters=2):
    return ModuloReservationTable(clustered_vliw(clusters), ii)


class TestBasics:
    def test_row_wraps_modulo_ii(self):
        table = mrt(ii=3)
        assert table.row(0) == 0
        assert table.row(3) == 0
        assert table.row(7) == 1

    def test_place_and_occupants(self):
        table = mrt()
        table.place(7, 0, FUKind.ALU, 2)
        assert table.occupants(0, FUKind.ALU, 2) == (7,)
        assert table.occupants(0, FUKind.ALU, 6) == (7,)  # same row
        assert table.occupants(1, FUKind.ALU, 2) == ()

    def test_capacity_enforced(self):
        table = mrt()
        table.place(1, 0, FUKind.MEM, 0)
        assert not table.is_free(0, FUKind.MEM, 0)
        with pytest.raises(SchedulingError):
            table.place(2, 0, FUKind.MEM, 4)  # row 0 again

    def test_multi_unit_capacity(self):
        machine = unclustered_vliw(3)
        table = ModuloReservationTable(machine, 2)
        for op_id in range(3):
            table.place(op_id, 0, FUKind.MEM, 0)
        assert not table.is_free(0, FUKind.MEM, 0)
        assert table.is_free(0, FUKind.MEM, 1)

    def test_remove_releases_slot(self):
        table = mrt()
        table.place(9, 1, FUKind.MUL, 5)
        table.remove(9, 1, FUKind.MUL, 5)
        assert table.is_free(1, FUKind.MUL, 5)

    def test_remove_unknown_rejected(self):
        table = mrt()
        with pytest.raises(SchedulingError):
            table.remove(1, 0, FUKind.ALU, 0)

    def test_invalid_ii(self):
        with pytest.raises(SchedulingError):
            ModuloReservationTable(clustered_vliw(1), 0)


class TestAccounting:
    def test_free_slots(self):
        table = mrt(ii=4)
        assert table.free_slots(0, FUKind.COPY) == 4
        table.place(1, 0, FUKind.COPY, 1)
        assert table.free_slots(0, FUKind.COPY) == 3
        assert table.free_slots(1, FUKind.COPY) == 4

    def test_used_slots_tracks_removal(self):
        table = mrt(ii=4)
        table.place(1, 0, FUKind.ALU, 0)
        table.place(2, 0, FUKind.ALU, 1)
        assert table.used_slots(0, FUKind.ALU) == 2
        table.remove(1, 0, FUKind.ALU, 0)
        assert table.used_slots(0, FUKind.ALU) == 1

    def test_utilization(self):
        table = mrt(ii=4)
        table.place(1, 0, FUKind.MEM, 0)
        table.place(2, 0, FUKind.MEM, 1)
        assert table.utilization(0, FUKind.MEM) == pytest.approx(0.5)

    def test_utilization_of_absent_kind_is_zero(self):
        machine = unclustered_vliw(1)  # no copy units
        table = ModuloReservationTable(machine, 3)
        assert table.utilization(0, FUKind.COPY) == 0.0

    def test_zero_capacity_never_free(self):
        machine = unclustered_vliw(1)
        table = ModuloReservationTable(machine, 3)
        assert not table.is_free(0, FUKind.COPY, 0)
