"""Fault-tolerance tests for the compilation service.

Every scenario here provokes a failure through the deterministic
fault-injection plane (:mod:`repro.faults`) and asserts the service
recovers: worker crashes respawn the pool and retry the job, poison
jobs are quarantined instead of crash-looping, connection resets and
queue-full rejections are absorbed by the retrying client, corrupt
disk-cache entries are read-repaired, and ``wait=false`` jobs
interrupted by a daemon crash are replayed from the journal.
"""

import re
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import faults
from repro.api import CompilationRequest, Toolchain, content_hash
from repro.api.cache import CompilationCache
from repro.config import DEFAULT_CONFIG
from repro.errors import ServiceError
from repro.faults import FaultPlan, FaultRule
from repro.machine.machine import clustered_vliw
from repro.service import RetryPolicy, ServiceClient
from repro.service.journal import JobJournal
from repro.workloads import make_kernel

from .test_service import LADDER, local_fingerprint, running_service, wait_until


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.disarm()
    yield
    faults.disarm()


# ----------------------------------------------------------------------
# Worker-crash supervision
# ----------------------------------------------------------------------


def test_worker_crash_respawns_pool_and_retries_job():
    # Occurrence 1 of worker-crash dies; the retry (occurrence 2) runs
    # clean, so the client sees a normal result with no visible hiccup.
    faults.install(FaultPlan((FaultRule(point="worker-crash", times=(1,)),)))
    payload = {"kernel": "dot_product", "clusters": 2, "config": dict(LADDER)}
    with running_service() as (service, client, _loop):
        result = client.compile(payload)
        status = client.job(result["job"])
        metrics = client.metrics()
    assert result["status"] == "done"
    assert result["served_from"] == "compile"
    assert result["fingerprint"] == local_fingerprint(payload)
    assert status["crashes"] == 1  # the crash is visible in job history
    supervisor = metrics["supervisor"]
    assert supervisor["worker_crashes"] == 1
    assert supervisor["pool_respawns"] == 1
    assert supervisor["jobs_retried"] == 1
    assert supervisor["jobs_quarantined"] == 0
    assert metrics["draining"] is False  # the old behavior was drain
    assert metrics["faults"]["fired"] == {"worker-crash": 1}


def test_poison_job_is_quarantined_and_daemon_survives():
    # The same job kills a worker twice (occurrences 1 and 2): that
    # exhausts its crash budget and it must be quarantined, not retried
    # into a crash loop — and the daemon must stay up for other work.
    faults.install(FaultPlan((FaultRule(point="worker-crash", times=(1, 2)),)))
    poison = {"kernel": "fir_filter", "clusters": 2, "config": dict(LADDER)}
    benign = {"kernel": "daxpy", "clusters": 2, "config": dict(LADDER)}
    with running_service() as (service, client, _loop):
        with pytest.raises(ServiceError) as rejected:
            client.compile(poison)
        assert rejected.value.status == 500
        assert "quarantined as poison" in str(rejected.value)
        match = re.search(r"job (\d+) quarantined", str(rejected.value))
        assert match is not None
        status = client.job(int(match.group(1)))
        assert status["status"] == "quarantined"
        assert status["crashes"] == 2

        # Occurrence 3 is unarmed: the respawned pool serves new work.
        ok = client.compile(benign)
        metrics = client.metrics()
    assert ok["status"] == "done"
    assert ok["fingerprint"] == local_fingerprint(benign)
    supervisor = metrics["supervisor"]
    assert supervisor["worker_crashes"] == 2
    assert supervisor["pool_respawns"] == 2
    assert supervisor["jobs_retried"] == 1  # first crash still retried
    assert supervisor["jobs_quarantined"] == 1
    assert metrics["draining"] is False


def test_injected_executor_still_falls_back_to_drain():
    # An injected executor is not the daemon's to respawn: a worker
    # crash must fall back to the pre-supervisor behavior (drain), not
    # pretend it recovered.
    faults.install(FaultPlan((FaultRule(point="worker-crash", times=(1,)),)))
    payload = {"kernel": "daxpy", "clusters": 2, "config": dict(LADDER)}
    with running_service(
        executor=ThreadPoolExecutor(max_workers=1)
    ) as (service, client, _loop):
        with pytest.raises(ServiceError) as rejected:
            client.compile(payload)
        assert rejected.value.status == 503
        assert "not respawnable" in str(rejected.value)
        wait_until(lambda: service._draining, what="drain after pool break")
        metrics = service.metrics_snapshot()
    assert metrics["supervisor"]["pool_respawns"] == 0
    assert metrics["draining"] is True


# ----------------------------------------------------------------------
# Client-side fault absorption
# ----------------------------------------------------------------------


def test_client_retries_through_a_connection_reset():
    # The daemon aborts the first response mid-exchange (conn-reset
    # occurrence 1); the client's transport retry resubmits and the
    # idempotent content-hash keyed cache serves the same result.
    faults.install(FaultPlan((FaultRule(point="conn-reset", times=(1,)),)))
    payload = {"kernel": "dot_product", "clusters": 2, "config": dict(LADDER)}
    with running_service() as (service, client, _loop):
        result = client.compile(payload)
        assert client.retries["transport"] == 1
        metrics = client.metrics()
    assert result["status"] == "done"
    assert result["fingerprint"] == local_fingerprint(payload)
    assert metrics["faults"]["fired"] == {"conn-reset": 1}


def test_client_honors_retry_after_on_queue_full():
    gate = threading.Event()

    def gated_compile(toolchain, request):
        gate.wait(60)
        return toolchain.compile(request)

    def payload(kernel):
        return {"kernel": kernel, "clusters": 2, "config": dict(LADDER)}

    try:
        with running_service(
            executor=ThreadPoolExecutor(max_workers=1),
            compile_fn=gated_compile,
            max_queue_depth=1,
        ) as (service, client, _loop):
            # One running + one queued = the queue is full.
            client.compile(payload("daxpy"), wait=False)
            client.compile(payload("dot_product"), wait=False)
            # Open the gate shortly after the 429 lands, so the client's
            # Retry-After-paced resubmission finds room.
            threading.Timer(0.5, gate.set).start()
            retrying = ServiceClient(
                (client.host, client.port),
                policy=RetryPolicy(max_attempts=8, read_timeout=60.0),
            )
            with retrying:
                result = retrying.compile(payload("fir_filter"))
            assert retrying.retries["busy"] >= 1
        assert result["status"] == "done"
        assert result["fingerprint"] == local_fingerprint(payload("fir_filter"))
    finally:
        gate.set()


# ----------------------------------------------------------------------
# Disk-cache read-repair
# ----------------------------------------------------------------------


def test_corrupt_cache_entry_is_read_repaired(tmp_path):
    request = CompilationRequest(
        loop=make_kernel("dot_product"),
        machine=clustered_vliw(2),
        config=DEFAULT_CONFIG.with_(**LADDER),
    )
    toolchain = Toolchain.default()
    report = toolchain.compile(request)
    key = content_hash(request, pipeline=toolchain.pass_names)
    cache = CompilationCache(tmp_path / "cache")
    cache.put(key, report)
    assert cache.get(key) is not None

    # Occurrence 1 garbles the entry on disk just before the read: the
    # lookup must miss, count the error, and DELETE the corrupt file so
    # the next lookup is a clean miss instead of the same failure.
    faults.install(
        FaultPlan((FaultRule(point="corrupt-cache-entry", times=(1,)),))
    )
    assert cache.get(key) is None
    assert cache.stats.errors == 1
    assert not cache.path_for(key).exists()

    # Degraded to recompilation: a re-put repopulates and reads hit again.
    assert cache.get(key) is None
    assert cache.stats.errors == 1  # clean miss, not another error
    cache.put(key, report)
    repaired = cache.get(key)
    assert repaired is not None and repaired.result.ii == report.result.ii


def test_corrupt_cache_entry_through_the_service(tmp_path):
    # End to end: a daemon whose disk tier is corrupted under it serves
    # the request anyway (recompile), and /metrics shows the repair.
    payload = {"kernel": "daxpy", "clusters": 2, "config": dict(LADDER)}
    cache_dir = tmp_path / "cache"
    with running_service(disk_cache=str(cache_dir)) as (service, client, _loop):
        first = client.compile(payload)
        assert first["served_from"] == "compile"
    faults.install(
        FaultPlan((FaultRule(point="corrupt-cache-entry", times=(1,)),))
    )
    # Fresh daemon, same disk tier: the LRU is cold so the read goes to
    # disk, finds the garbled entry, repairs, and recompiles.
    with running_service(disk_cache=str(cache_dir)) as (service, client, _loop):
        again = client.compile(payload)
        metrics = client.metrics()
    assert again["served_from"] == "compile"
    assert again["fingerprint"] == first["fingerprint"]
    assert metrics["cache"]["disk_errors"] == 1


# ----------------------------------------------------------------------
# Journal crash recovery
# ----------------------------------------------------------------------


RECOVERY_PAYLOADS = [
    {"kernel": "dot_product", "clusters": 2, "config": dict(LADDER)},
    {"kernel": "daxpy", "clusters": 2, "config": dict(LADDER)},
]


def test_crash_recovery_replays_interrupted_wait_false_jobs(tmp_path):
    journal_path = tmp_path / "journal.jsonl"
    cache_dir = tmp_path / "cache"
    stuck = threading.Event()

    def stuck_compile(toolchain, request):
        stuck.wait(30)  # never released while the first daemon lives
        return toolchain.compile(request)

    # Daemon #1: accept fire-and-forget jobs, then die with them running.
    try:
        with running_service(
            journal=str(journal_path),
            disk_cache=str(cache_dir),
            compile_fn=stuck_compile,
        ) as (service, client, _loop):
            receipts = [
                client.compile(dict(p), wait=False) for p in RECOVERY_PAYLOADS
            ]
            assert all(r["status"] == "queued" for r in receipts)
            # The 202 receipts are durable: both jobs are journaled.
            wait_until(lambda: service._running == 2, what="jobs dispatched")
        # Exiting the context hard-stops the daemon mid-compile: the
        # stuck jobs never reach a terminal journal state.
    finally:
        stuck.set()  # let the abandoned executor threads unwind

    with JobJournal(journal_path, fsync=False) as journal:
        entries, stats = journal.replay()
    assert stats.live == 2  # both interrupted jobs survived on disk

    # Daemon #2: same journal, same disk cache, a working compile path.
    with running_service(
        journal=str(journal_path), disk_cache=str(cache_dir)
    ) as (service, client, _loop):
        metrics = client.metrics()
        assert metrics["journal"]["recovered_jobs"] == 2
        assert metrics["journal"]["replay"]["live"] == 2
        wait_until(
            lambda: client.metrics()["compiles"]["completed"] == 2,
            what="replayed jobs to finish",
        )
        # Every replayed job reached a terminal state and its result is
        # bit-identical to a local compile of the same payload.
        for payload in RECOVERY_PAYLOADS:
            served = client.compile(dict(payload))
            assert served["served_from"] in ("memory", "disk")
            assert served["fingerprint"] == local_fingerprint(payload)

    # After recovery + completion nothing in the journal is live.
    with JobJournal(journal_path, fsync=False) as journal:
        entries, stats = journal.replay()
    assert stats.live == 0


def test_recovery_fails_orphaned_wait_true_jobs(tmp_path):
    # A wait=true job's client connection died with the old daemon —
    # nobody can receive the result, so replay closes it out as failed
    # rather than burning a worker on it.
    journal_path = tmp_path / "journal.jsonl"
    with JobJournal(journal_path, fsync=False) as journal:
        journal.append(
            "submitted", "orphan-key", wait=True,
            payload={"kernel": "daxpy", "clusters": 2},
        )
    with running_service(journal=str(journal_path)) as (service, client, _loop):
        metrics = client.metrics()
    assert metrics["journal"]["recovered_jobs"] == 0
    assert metrics["journal"]["replay"]["live"] == 1
    assert metrics["compiles"]["started"] == 0
    # Recovery compacted the failed orphan away.
    with JobJournal(journal_path, fsync=False) as journal:
        entries, stats = journal.replay()
    assert entries == {} and stats.records == 0


def test_recovered_job_served_from_cache_is_not_recompiled(tmp_path):
    # The compile finished (it is in the disk cache) but the daemon died
    # before journaling "done": replay must notice the cache hit and
    # retire the journal entry without re-running the job.
    payload = {"kernel": "fir_filter", "clusters": 2, "config": dict(LADDER)}
    journal_path = tmp_path / "journal.jsonl"
    cache_dir = tmp_path / "cache"
    with running_service(disk_cache=str(cache_dir)) as (service, client, _loop):
        done = client.compile(dict(payload))
        key = done["cache_key"]
    with JobJournal(journal_path, fsync=False) as journal:
        journal.append("started", key, wait=False, payload=dict(payload))
    with running_service(
        journal=str(journal_path), disk_cache=str(cache_dir)
    ) as (service, client, _loop):
        metrics = client.metrics()
    assert metrics["journal"]["recovered_jobs"] == 0
    assert metrics["compiles"]["started"] == 0  # no recompile
    with JobJournal(journal_path, fsync=False) as journal:
        entries, stats = journal.replay()
    assert stats.live == 0
