"""Tests for the partial schedule and its conflict queries."""

import pytest

from repro.errors import SchedulingError
from repro.ir import DEFAULT_LATENCIES, LoopBuilder
from repro.machine import clustered_vliw
from repro.scheduling import PartialSchedule

from .conftest import build_stream_loop


def make_schedule(loop=None, ii=4, clusters=4):
    loop = loop or build_stream_loop()
    return PartialSchedule(loop.ddg.copy(), clustered_vliw(clusters), ii, DEFAULT_LATENCIES)


class TestPlacement:
    def test_place_remove_roundtrip(self):
        schedule = make_schedule()
        schedule.place(0, 3, 1)
        assert schedule.is_scheduled(0)
        assert schedule.time(0) == 3
        assert schedule.cluster(0) == 1
        placement = schedule.remove(0)
        assert placement.time == 3
        assert not schedule.is_scheduled(0)

    def test_double_place_rejected(self):
        schedule = make_schedule()
        schedule.place(0, 0, 0)
        with pytest.raises(SchedulingError):
            schedule.place(0, 1, 1)

    def test_remove_unscheduled_rejected(self):
        schedule = make_schedule()
        with pytest.raises(SchedulingError):
            schedule.remove(0)

    def test_negative_time_rejected(self):
        schedule = make_schedule()
        with pytest.raises(SchedulingError):
            schedule.place(0, -1, 0)

    def test_mrt_follows_placements(self):
        schedule = make_schedule(ii=2)
        schedule.place(0, 0, 0)  # load on c0 mem
        assert not schedule.mrt.is_free(0, schedule.ddg.op(0).fu_kind, 0)
        schedule.remove(0)
        assert schedule.mrt.is_free(0, schedule.ddg.op(0).fu_kind, 0)


class TestTimingQueries:
    def test_earliest_start_from_scheduled_preds(self):
        # stream: v0=load, v1=load, v2=add(v0,v1), v3=mul, v4=store
        schedule = make_schedule(ii=4)
        schedule.place(0, 0, 0)
        # load latency 2 -> add can start at 2.
        assert schedule.earliest_start(2) == 2
        schedule.place(1, 3, 1)
        assert schedule.earliest_start(2) == 5

    def test_earliest_start_ignores_unscheduled(self):
        schedule = make_schedule()
        assert schedule.earliest_start(2) == 0

    def test_earliest_start_discounts_loop_carried(self):
        b = LoopBuilder("carried")
        x = b.load()
        y = b.add(b.carried(x, 2), "k")
        b.store(y)
        loop = b.build()
        schedule = PartialSchedule(
            loop.ddg.copy(), clustered_vliw(2), 4, DEFAULT_LATENCIES
        )
        schedule.place(0, 5, 0)
        # 5 + 2 - 4*2 < 0 -> clamps at 0 via max with other edges.
        assert schedule.earliest_start(1) == 0

    def test_succ_violations(self):
        schedule = make_schedule(ii=4)
        schedule.place(2, 3, 0)  # the add issued at 3
        # Load latency is 2: issuing the load at 3 pushes the add to >= 5.
        assert schedule.succ_violations(0, 3) == [2]
        # At time 1 the add's start (1 + 2 = 3) is still honoured.
        assert schedule.succ_violations(0, 1) == []


class TestCommunicationQueries:
    def test_conflicts_with_far_predecessor(self):
        schedule = make_schedule(clusters=6)
        schedule.place(0, 0, 0)  # producer on cluster 0
        assert schedule.comm_conflicts(2, 3) == [0]
        assert schedule.comm_conflicts(2, 1) == []

    def test_conflicts_with_far_successor(self):
        schedule = make_schedule(clusters=6)
        schedule.place(2, 5, 3)  # the add (consumer of load 0)
        assert schedule.comm_conflicts(0, 0) == [2]
        assert schedule.comm_conflicts(0, 2) == []

    def test_compatible_clusters(self):
        schedule = make_schedule(clusters=6)
        schedule.place(0, 0, 0)
        assert schedule.comm_compatible_clusters(2) == [0, 1, 5]

    def test_everything_compatible_when_no_partners(self):
        schedule = make_schedule(clusters=5)
        assert schedule.comm_compatible_clusters(2) == list(range(5))

    def test_small_rings_never_conflict(self):
        for clusters in (1, 2, 3):
            schedule = make_schedule(clusters=clusters)
            schedule.place(0, 0, 0)
            assert schedule.comm_compatible_clusters(2) == list(range(clusters))

    def test_mem_edges_do_not_communicate(self):
        b = LoopBuilder("mem")
        x = b.load("a")
        st = b.store(x, "b")
        ld = b.load("b")
        b.store(ld, "c")
        b.mem_dep(st, ld, omega=0, latency=1)
        loop = b.build()
        schedule = PartialSchedule(
            loop.ddg.copy(), clustered_vliw(6), 4, DEFAULT_LATENCIES
        )
        schedule.place(st.op_id, 4, 0)
        # The dependent load may sit anywhere: memory is shared.
        assert schedule.comm_conflicts(ld.op_id, 3) == []

    def test_scheduled_flow_partner_lists(self):
        schedule = make_schedule(clusters=4)
        schedule.place(0, 0, 0)
        schedule.place(4, 9, 1)  # store, consumer of mul 3
        assert schedule.scheduled_flow_preds(2) == [(0, 0)]
        assert schedule.scheduled_flow_succs(3) == [4]


class TestShape:
    def test_stage_count(self):
        schedule = make_schedule(ii=3)
        schedule.place(0, 0, 0)
        assert schedule.stage_count == 1
        schedule.place(1, 7, 1)
        assert schedule.max_time == 7
        assert schedule.stage_count == 3

    def test_free_slots_passthrough(self):
        schedule = make_schedule(ii=5)
        kind = schedule.ddg.op(0).fu_kind
        before = schedule.free_slots(0, kind)
        schedule.place(0, 0, 0)
        assert schedule.free_slots(0, kind) == before - 1
