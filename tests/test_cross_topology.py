"""Cross-topology correctness: DMS + the independent checker over every
registered topology.

The DMS paper argues the algorithm suits any clustered machine with
fixed-timing neighbour links; the topology registry makes that claim
testable.  Every topology kind must (a) satisfy the protocol invariants
(distance/neighbors/paths consistency) and (b) produce schedules the
independent checker accepts, for every cluster count the sweep uses.
"""

import pytest

from repro.api import CompilationRequest, Toolchain
from repro.errors import MachineError
from repro.machine import (
    CrossbarTopology,
    GraphTopology,
    MeshTopology,
    Topology,
    TorusTopology,
    clustered_vliw,
    make_topology,
    register_topology,
    topology_kinds,
)
from repro.machine.topology import TOPOLOGY_REGISTRY, _cached_topology
from repro.scheduling.checker import check_schedule
from repro.workloads import make_kernel, perfect_club_surrogate

CLUSTER_COUNTS = (2, 4, 8)


def compile_on(machine, loop):
    report = Toolchain.default().compile(
        CompilationRequest(
            loop=loop, machine=machine, allocate=False, validate=True
        )
    )
    return report.result


class TestProtocolInvariants:
    @pytest.mark.parametrize("kind", topology_kinds())
    @pytest.mark.parametrize("n", CLUSTER_COUNTS)
    def test_distance_neighbor_path_consistency(self, kind, n):
        topology = make_topology(kind, n)
        assert topology.n_clusters == n
        for a in range(n):
            neighbors = topology.neighbors(a)
            assert list(neighbors) == sorted(set(neighbors))
            assert a not in neighbors
            for b in range(n):
                d = topology.distance(a, b)
                assert d == topology.distance(b, a)
                assert (d == 0) == (a == b)
                assert topology.adjacent(a, b) == (d <= 1)
                if a != b:
                    assert (b in neighbors) == (d == 1)
                paths = topology.paths(a, b)
                assert paths, f"no path {a}->{b} on {topology!r}"
                assert len(paths) <= max(topology.max_paths, 2)
                for path in paths:
                    assert path.clusters[0] == a
                    assert path.clusters[-1] == b
                    assert path.hops >= d
                    for u, v in zip(path.clusters, path.clusters[1:]):
                        assert topology.distance(u, v) == 1

    @pytest.mark.parametrize("kind", topology_kinds())
    def test_directed_pairs_are_symmetric_and_adjacent(self, kind):
        topology = make_topology(kind, 6)
        pairs = set(topology.directed_pairs())
        for a, b in pairs:
            assert (b, a) in pairs
            assert topology.distance(a, b) == 1


class TestCrossTopologyScheduling:
    """DMS + checker.verify over every registered topology x {2, 4, 8}."""

    @pytest.fixture(scope="class")
    def sample_loops(self):
        return perfect_club_surrogate(4, seed=7) + [
            make_kernel("fir_filter", taps=6),
            make_kernel("dot_product"),
        ]

    @pytest.mark.parametrize("kind", topology_kinds())
    @pytest.mark.parametrize("clusters", CLUSTER_COUNTS)
    def test_dms_schedules_verify(self, kind, clusters, sample_loops):
        machine = clustered_vliw(clusters, topology=kind)
        for loop in sample_loops:
            result = compile_on(machine, loop)
            report = check_schedule(result)
            assert report.ok, report.problems
            assert result.scheduler == "dms"


class TestConcreteTopologies:
    def test_mesh_manhattan_distance(self):
        mesh = MeshTopology(6, rows=2, cols=3)
        assert mesh.distance(0, 5) == 3  # (0,0) -> (1,2)
        assert mesh.neighbors(0) == (1, 3)
        assert mesh.neighbors(4) == (1, 3, 5)

    def test_mesh_default_factorization_is_near_square(self):
        assert MeshTopology(8).params() == {"rows": 2, "cols": 4}
        assert MeshTopology(9).params() == {"rows": 3, "cols": 3}
        assert MeshTopology(7).params() == {"rows": 1, "cols": 7}

    def test_mesh_paths_are_shortest_and_bounded(self):
        mesh = MeshTopology(9, rows=3, cols=3)
        paths = mesh.paths(0, 8)
        assert 1 <= len(paths) <= mesh.max_paths
        assert all(p.hops == 4 for p in paths)

    def test_mesh_bad_shape_rejected(self):
        with pytest.raises(MachineError):
            MeshTopology(6, rows=4, cols=2)

    def test_torus_wraparound_halves_distances(self):
        mesh = MeshTopology(16, rows=4, cols=4)
        torus = TorusTopology(16, rows=4, cols=4)
        assert mesh.distance(0, 15) == 6
        assert torus.distance(0, 15) == 2
        assert torus.neighbors(0) == (1, 3, 4, 12)

    def test_torus_degenerate_rows_have_no_self_loops(self):
        torus = TorusTopology(2, rows=1, cols=2)
        assert torus.neighbors(0) == (1,)

    def test_crossbar_is_fully_connected(self):
        crossbar = CrossbarTopology(5)
        for a in range(5):
            for b in range(5):
                if a != b:
                    assert crossbar.distance(a, b) == 1
        assert crossbar.paths(0, 4) == [crossbar.paths(0, 4)[0]]
        assert crossbar.paths(0, 4)[0].n_moves == 0

    def test_graph_custom_edges(self):
        star = GraphTopology(4, edges=((0, 1), (0, 2), (0, 3)))
        assert star.distance(1, 3) == 2
        assert star.neighbors(0) == (1, 2, 3)
        (path,) = star.paths(1, 2)
        assert path.clusters == (1, 0, 2)

    def test_graph_defaults_to_ring(self):
        graph = GraphTopology(5)
        ring = make_topology("ring", 5)
        for a in range(5):
            for b in range(5):
                assert graph.distance(a, b) == ring.distance(a, b)

    def test_graph_rejects_disconnected(self):
        with pytest.raises(MachineError, match="disconnected"):
            GraphTopology(4, edges=((0, 1), (2, 3)))

    def test_graph_rejects_self_loops(self):
        with pytest.raises(MachineError, match="self-loop"):
            GraphTopology(3, edges=((0, 0),))


class TestRegistryExtension:
    """Adding a topology is one registration (the satellite's invariant)."""

    def test_registering_a_topology_enables_machines(self, stream_loop):
        @register_topology
        class StarTopology(Topology):
            """Hub-and-spoke: cluster 0 is adjacent to everyone."""

            kind = "star-test"

            def distance(self, a, b):
                self._check(a)
                self._check(b)
                if a == b:
                    return 0
                return 1 if 0 in (a, b) else 2

            def neighbors(self, cluster):
                self._check(cluster)
                if cluster == 0:
                    return tuple(range(1, self.n_clusters))
                return (0,)

        try:
            assert "star-test" in topology_kinds()
            machine = clustered_vliw(4, topology="star-test")
            result = compile_on(machine, stream_loop)
            assert check_schedule(result).ok
            # Far spokes route through the hub.
            (path,) = machine.topology.paths(1, 2)
            assert path.clusters == (1, 0, 2)
        finally:
            TOPOLOGY_REGISTRY.pop("star-test", None)
            _cached_topology.cache_clear()

    def test_duplicate_kind_rejected(self):
        with pytest.raises(MachineError, match="already registered"):

            @register_topology
            class AnotherRing(Topology):
                kind = "ring"

    def test_unnamed_topology_rejected(self):
        with pytest.raises(MachineError, match="no kind"):

            @register_topology
            class Nameless(Topology):
                pass
