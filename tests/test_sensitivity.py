"""Tests for the latency-sensitivity experiment."""

import pytest

from repro.experiments import LATENCY_PROFILES, latency_sensitivity
from repro.workloads import perfect_club_surrogate


class TestProfiles:
    def test_profiles_registered(self):
        assert "default" in LATENCY_PROFILES
        assert "unit_latency" in LATENCY_PROFILES
        assert len(LATENCY_PROFILES) >= 3


class TestSensitivity:
    @pytest.fixture(scope="class")
    def figure(self):
        loops = perfect_club_surrogate(6, seed=17)
        return latency_sensitivity(loops, cluster_counts=(2, 6))

    def test_series_per_profile(self, figure):
        assert set(figure.series) == set(LATENCY_PROFILES)

    def test_small_rings_stay_clean_under_all_profiles(self, figure):
        for name in LATENCY_PROFILES:
            assert figure.series_value(name, 2.0) <= 20.0

    def test_values_are_percentages(self, figure):
        for values in figure.series.values():
            assert all(0.0 <= v <= 100.0 for v in values)
