"""Tests for the ResMII / RecMII lower bounds."""

import pytest

from repro.errors import SchedulingError
from repro.ir import DEFAULT_LATENCIES, LatencyModel, LoopBuilder, OpCode
from repro.machine import clustered_vliw, unclustered_vliw
from repro.scheduling import compute_mii, rec_mii, res_mii

from .conftest import build_reduction_loop, build_stream_loop


class TestResMII:
    def test_stream_on_wide_machine(self):
        loop = build_stream_loop()  # 2 ld, 1 add, 1 mul, 1 st
        assert res_mii(loop.ddg, unclustered_vliw(1)) == 3  # 3 mem ops / 1 unit
        assert res_mii(loop.ddg, unclustered_vliw(3)) == 1

    def test_counts_cluster_totals(self):
        loop = build_stream_loop()
        assert res_mii(loop.ddg, clustered_vliw(3)) == 1

    def test_copy_ops_count_against_copy_units(self):
        loop = build_stream_loop()
        ddg = loop.ddg.copy()
        from repro.ir import use

        for _ in range(5):
            ddg.new_operation(OpCode.COPY, (use(0),))
        # 5 copies on 2 copy units -> bound 3.
        assert res_mii(ddg, clustered_vliw(2)) == 3

    def test_missing_unit_kind_rejected(self):
        loop = build_stream_loop()
        ddg = loop.ddg.copy()
        from repro.ir import use

        ddg.new_operation(OpCode.COPY, (use(0),))
        with pytest.raises(SchedulingError):
            res_mii(ddg, unclustered_vliw(2))  # no copy FU


class TestRecMII:
    def test_stream_has_rec_mii_one(self):
        loop = build_stream_loop()
        assert rec_mii(loop.ddg, DEFAULT_LATENCIES) == 1

    def test_simple_accumulator(self):
        loop = build_reduction_loop()
        # add latency 1, omega 1 -> RecMII 1.
        assert rec_mii(loop.ddg, DEFAULT_LATENCIES) == 1

    def test_long_latency_recurrence(self):
        b = LoopBuilder("mulrec")
        s = b.placeholder()
        nxt = b.mul(b.carried(s, 1), "r")
        b.bind(s, nxt)
        loop = b.build()
        # mul latency 3, omega 1.
        assert rec_mii(loop.ddg, DEFAULT_LATENCIES) == 3

    def test_distance_divides_the_bound(self):
        b = LoopBuilder("d2")
        s = b.placeholder()
        nxt = b.mul(b.carried(s, 2), "r")
        b.bind(s, nxt)
        loop = b.build()
        # latency 3 over distance 2 -> ceil(3/2) = 2.
        assert rec_mii(loop.ddg, DEFAULT_LATENCIES) == 2

    def test_two_op_circuit(self):
        b = LoopBuilder("two")
        s = b.placeholder()
        m = b.mul(b.carried(s, 1), "a")  # 3 cycles
        nxt = b.add(m, "b")  # 1 cycle
        b.bind(s, nxt)
        loop = b.build()
        assert rec_mii(loop.ddg, DEFAULT_LATENCIES) == 4

    def test_latency_model_matters(self):
        b = LoopBuilder("lat")
        s = b.placeholder()
        nxt = b.mul(b.carried(s, 1), "r")
        b.bind(s, nxt)
        loop = b.build()
        assert rec_mii(loop.ddg, LatencyModel(mul=7)) == 7

    def test_max_over_circuits(self):
        b = LoopBuilder("multi")
        s1 = b.placeholder()
        n1 = b.add(b.carried(s1, 1), "a")  # RecMII 1
        b.bind(s1, n1)
        s2 = b.placeholder()
        n2 = b.div(b.carried(s2, 1), "b")  # RecMII 8
        b.bind(s2, n2)
        loop = b.build()
        assert rec_mii(loop.ddg, DEFAULT_LATENCIES) == 8

    def test_scaled_variant_monotone(self):
        loop = build_reduction_loop()
        values = [rec_mii(loop.ddg, DEFAULT_LATENCIES, unroll=u) for u in (1, 2, 4)]
        assert values == sorted(values)

    def test_invalid_unroll(self):
        loop = build_reduction_loop()
        with pytest.raises(SchedulingError):
            rec_mii(loop.ddg, DEFAULT_LATENCIES, unroll=0)

    def test_mem_edges_participate(self):
        b = LoopBuilder("memrec")
        x = b.load("a[i]")
        st = b.store(x, "a[i+1]")
        b.mem_dep(st, x, omega=1, latency=1)
        loop = b.build()
        # Circuit: load(2) -> store, store -(mem,1)-> load: ceil(3/1) = 3.
        assert rec_mii(loop.ddg, DEFAULT_LATENCIES) == 3


class TestCombined:
    def test_mii_is_max_of_bounds(self):
        loop = build_reduction_loop()
        result = compute_mii(loop.ddg, unclustered_vliw(1), DEFAULT_LATENCIES)
        assert result.mii == max(result.res_mii, result.rec_mii)
        assert result.res_mii == 2  # 2 mem ops on 1 unit
        assert result.rec_mii == 1

    def test_wide_machine_exposes_recurrence_bound(self):
        b = LoopBuilder("recbound")
        x = b.load()
        s = b.placeholder()
        nxt = b.mul(b.carried(s, 1), x)
        b.bind(s, nxt)
        loop = b.build()
        result = compute_mii(loop.ddg, unclustered_vliw(8), DEFAULT_LATENCIES)
        assert result.mii == result.rec_mii == 3
