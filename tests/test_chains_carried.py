"""Chain behaviour on loop-carried edges and custom move latencies."""

import pytest

from repro.config import SchedulerConfig
from repro.ir import DDG, DEFAULT_LATENCIES, LatencyModel, OpCode
from repro.ir.operations import Operation, ValueUse, use
from repro.machine import clustered_vliw
from repro.scheduling import (
    ChainPlanner,
    ChainRegistry,
    PartialSchedule,
    check_schedule,
)
from repro.scheduling.result import ScheduleResult
from repro.simulator import simulate


def carried_far_graph(omega=2):
    """q = add(p1, p2 from `omega` iterations ago), producers far apart."""
    ddg = DDG("carried_far")
    ddg.add_operation(Operation(0, OpCode.LOAD, (), "p1"))
    ddg.add_operation(Operation(1, OpCode.LOAD, (), "p2"))
    ddg.add_operation(
        Operation(2, OpCode.ADD, (use(0), ValueUse(1, omega)), "q")
    )
    return ddg


def plan_and_apply(ddg, ii=4, clusters=6, latencies=DEFAULT_LATENCIES):
    machine = clustered_vliw(clusters)
    schedule = PartialSchedule(ddg, machine, ii, latencies)
    schedule.place(0, 0, 0)
    schedule.place(1, 0, 3)
    planner = ChainPlanner(schedule, SchedulerConfig())
    plan = planner.plan(2)
    assert plan is not None
    registry = ChainRegistry()
    chains = planner.apply(2, plan, registry)
    return machine, schedule, plan, chains


class TestCarriedChains:
    def test_omega_moves_to_first_chain_edge(self):
        ddg = carried_far_graph(omega=2)
        _machine, schedule, plan, chains = plan_and_apply(ddg)
        chain = next(c for c in chains if c.producer == 1)
        first_move = ddg.op(chain.move_ids[0])
        assert first_move.srcs[0].producer == 1
        assert first_move.srcs[0].omega == 2
        # Later hops and the consumer use same-iteration references.
        consumer_srcs = [
            s for s in ddg.op(2).srcs if not s.is_external
        ]
        rewired = next(
            s for s in consumer_srcs if s.producer == chain.move_ids[-1]
        )
        assert rewired.omega == 0

    def test_carried_chain_relaxes_move_start(self):
        # omega * II of slack: the move may issue before the producer in
        # absolute kernel time (it reads an older iteration's value).
        ddg = carried_far_graph(omega=2)
        _machine, schedule, plan, _chains = plan_and_apply(ddg, ii=4)
        planned = next(c for c in plan.chains if c.producer == 1)
        # ready = t(p) + lat - omega*II = 0 + 2 - 8 < 0 -> clamped to 0.
        assert planned.move_times[0] == 0

    def test_end_to_end_schedule_simulates(self):
        ddg = carried_far_graph(omega=2)
        machine, schedule, plan, _chains = plan_and_apply(ddg)
        # Place the consumer and package a result for the simulator.
        estart = max(0, schedule.earliest_start(2))
        kind = ddg.op(2).fu_kind
        for t in range(estart, estart + schedule.ii):
            if schedule.mrt.is_free(plan.cluster, kind, t):
                schedule.place(2, t, plan.cluster)
                break
        result = ScheduleResult(
            loop_name="carried_far",
            machine=machine,
            scheduler="dms",
            ii=schedule.ii,
            res_mii=1,
            rec_mii=1,
            ddg=ddg,
            placements=schedule.placements(),
            latencies=DEFAULT_LATENCIES,
        )
        assert check_schedule(result).ok
        report = simulate(result, iterations=8)
        assert report.ok


class TestMoveLatency:
    def test_slow_moves_space_the_chain(self):
        latencies = LatencyModel(move=3)
        ddg = DDG("slow_moves")
        ddg.add_operation(Operation(0, OpCode.LOAD, (), "p"))
        ddg.add_operation(Operation(1, OpCode.ADD, (use(0), use(0)), "q"))
        machine = clustered_vliw(8)
        schedule = PartialSchedule(ddg, machine, 4, latencies)
        schedule.place(0, 0, 0)
        planner = ChainPlanner(schedule, SchedulerConfig())
        # Force the consumer far away by only allowing cluster 4: plan for
        # it directly through the planner's internals is private, so pin a
        # scheduled successor there instead.
        ddg.add_operation(Operation(2, OpCode.STORE, (use(1),), "sink"))
        schedule.place(2, 12, 4)
        plan = planner.plan(1)
        assert plan is not None
        chain = plan.chains[0]
        if chain.n_moves >= 2:
            gaps = [
                b - a
                for a, b in zip(chain.move_times, chain.move_times[1:])
            ]
            assert all(g >= 3 for g in gaps)
