"""Unit tests for the deterministic fault-injection plane."""

import os

import pytest

from repro import faults
from repro.errors import FaultError
from repro.faults import FaultPlan, FaultRule, SimulatedWorkerCrash


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.disarm()
    yield
    faults.disarm()
    os.environ.pop(faults.ENV_SPEC, None)
    os.environ.pop(faults.ENV_SEED, None)


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------


def test_spec_roundtrip():
    spec = "worker-crash:times=2+5;slow-compile:rate=0.25:delay=0.05"
    plan = FaultPlan.from_spec(spec, seed=7)
    assert plan.rules["worker-crash"].times == (2, 5)
    assert plan.rules["slow-compile"].rate == 0.25
    assert plan.rules["slow-compile"].delay == 0.05
    # The canonical spec survives a parse -> print -> parse cycle.
    assert FaultPlan.from_spec(plan.spec, seed=7).spec == plan.spec


def test_spec_ignores_blank_clauses():
    plan = FaultPlan.from_spec(" ;conn-reset:times=1; ")
    assert set(plan.rules) == {"conn-reset"}


@pytest.mark.parametrize(
    "spec",
    [
        "warp-core-breach:times=1",  # unknown point
        "worker-crash:whenever=now",  # unknown option key
        "worker-crash:times=soon",  # unparsable value
        "worker-crash:rate=1.5",  # rate out of range
        "worker-crash:times=0",  # occurrence indices are 1-based
        "worker-crash:times=1;worker-crash:times=2",  # duplicate point
    ],
)
def test_bad_specs_are_rejected(spec):
    with pytest.raises(FaultError):
        FaultPlan.from_spec(spec)


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------


def test_times_fires_on_exact_occurrences():
    plan = FaultPlan((FaultRule(point="conn-reset", times=(2, 4)),))
    fired = [plan.should_fire("conn-reset") for _ in range(6)]
    assert fired == [False, True, False, True, False, False]


def test_every_fires_periodically_and_limit_caps_it():
    plan = FaultPlan(
        (FaultRule(point="slow-compile", every=2, limit=2),)
    )
    fired = [plan.should_fire("slow-compile") for _ in range(8)]
    assert fired == [False, True, False, True, False, False, False, False]


def test_rate_is_deterministic_per_seed():
    def sequence(seed):
        plan = FaultPlan(
            (FaultRule(point="corrupt-cache-entry", rate=0.5),), seed=seed
        )
        return [plan.should_fire("corrupt-cache-entry") for _ in range(64)]

    assert sequence(1) == sequence(1)
    assert any(sequence(1)) and not all(sequence(1))
    # Different seeds draw from different streams (64 coin flips
    # colliding across seeds would be a 2^-64 accident).
    assert sequence(1) != sequence(2)


def test_unarmed_points_count_occurrences_but_never_fire():
    plan = FaultPlan((FaultRule(point="conn-reset", times=(1,)),))
    assert plan.should_fire("worker-crash") is False
    counters = plan.counters()
    assert counters["occurrences"] == {"worker-crash": 1}
    assert counters["fired"] == {}
    assert counters["armed"] == ["conn-reset"]


# ----------------------------------------------------------------------
# Process-wide arming
# ----------------------------------------------------------------------


def test_fire_is_a_noop_when_disarmed():
    assert faults.fire("worker-crash") is False
    faults.crashpoint()  # must not raise
    assert faults.torn_write_size(100) is None


def test_env_arming_via_reset():
    os.environ[faults.ENV_SPEC] = "conn-reset:times=1"
    os.environ[faults.ENV_SEED] = "9"
    faults.reset()  # fresh-process semantics: re-read the environment
    plan = faults.active()
    assert plan is not None
    assert set(plan.rules) == {"conn-reset"}
    assert plan.seed == 9
    assert faults.fire("conn-reset") is True
    assert faults.fire("conn-reset") is False


def test_env_seed_must_be_an_integer():
    os.environ[faults.ENV_SPEC] = "conn-reset:times=1"
    os.environ[faults.ENV_SEED] = "lots"
    faults.reset()
    with pytest.raises(FaultError):
        faults.active()


def test_disarm_wins_over_environment():
    os.environ[faults.ENV_SPEC] = "conn-reset:times=1"
    faults.disarm()  # explicit disarm must not be overridden by env
    assert faults.active() is None
    assert faults.fire("conn-reset") is False


def test_install_from_spec_matches_install():
    faults.install_from_spec("worker-crash:times=2", seed=3)
    plan = faults.active()
    assert plan is not None and plan.seed == 3
    assert plan.should_fire("worker-crash") is False
    assert plan.should_fire("worker-crash") is True


# ----------------------------------------------------------------------
# Fault points
# ----------------------------------------------------------------------


def test_crashpoint_simulates_in_parent_process():
    # In the test process (no multiprocessing parent) the crashpoint
    # must raise — never os._exit — and the exception must be a
    # BrokenExecutor so supervision code treats it like a dead pool.
    faults.install(FaultPlan((FaultRule(point="worker-crash", times=(1,)),)))
    with pytest.raises(SimulatedWorkerCrash):
        faults.crashpoint()
    faults.crashpoint()  # occurrence 2: quiet


def test_torn_write_size_halves_the_line():
    faults.install(
        FaultPlan((FaultRule(point="journal-torn-write", times=(1, 2)),))
    )
    assert faults.torn_write_size(100) == 50
    assert faults.torn_write_size(1) == 1  # never a zero-byte write
    assert faults.torn_write_size(100) is None


def test_damage_cache_entry_garbles_the_file(tmp_path):
    target = tmp_path / "entry.pkl"
    target.write_bytes(b"A" * 64)
    faults.install(
        FaultPlan((FaultRule(point="corrupt-cache-entry", times=(1,)),))
    )
    faults.damage_cache_entry(target)
    assert target.read_bytes() != b"A" * 64
    assert b"fault-injection" in target.read_bytes()
    # Missing files are tolerated: the read path will miss regardless.
    faults.install(
        FaultPlan((FaultRule(point="corrupt-cache-entry", times=(1,)),))
    )
    faults.damage_cache_entry(tmp_path / "absent.pkl")


def test_counters_report_spec_and_seed():
    faults.install_from_spec("slow-compile:delay=0.01:every=1", seed=4)
    plan = faults.active()
    assert plan is not None
    plan.should_fire("slow-compile")
    counters = plan.counters()
    assert counters["seed"] == 4
    assert counters["spec"] == "slow-compile:every=1:delay=0.01"
    assert counters["fired"] == {"slow-compile": 1}
