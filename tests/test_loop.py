"""Tests for the Loop container."""

import pytest

from repro.errors import DDGError
from repro.ir import Loop

from .conftest import build_reduction_loop, build_stream_loop


class TestMetadata:
    def test_kernel_iterations(self):
        loop = build_stream_loop(trip_count=100)
        assert loop.kernel_iterations == 100
        unrolled = loop.with_ddg(loop.ddg, unroll_factor=8)
        assert unrolled.kernel_iterations == 13  # ceil(100 / 8)

    def test_vectorizable_flag(self):
        assert build_stream_loop().is_vectorizable
        assert not build_reduction_loop().is_vectorizable

    def test_invalid_trip_count(self):
        loop = build_stream_loop()
        with pytest.raises(DDGError):
            Loop("bad", loop.ddg, trip_count=0)

    def test_invalid_unroll_factor(self):
        loop = build_stream_loop()
        with pytest.raises(DDGError):
            Loop("bad", loop.ddg, unroll_factor=0)

    def test_with_ddg_preserves_fields(self):
        loop = build_stream_loop(trip_count=77)
        replaced = loop.with_ddg(loop.ddg.copy())
        assert replaced.trip_count == 77
        assert replaced.name == loop.name
        assert replaced.unroll_factor == loop.unroll_factor

    def test_origin_metadata(self):
        loop = build_stream_loop()
        assert isinstance(loop.origin, dict)

    def test_n_ops(self):
        assert build_stream_loop().n_ops == 5

    def test_repr_mentions_name(self):
        assert "stream" in repr(build_stream_loop())
