"""Failure injection: the simulator must catch what the checker catches.

Every sabotage below produces a schedule the static checker would
reject; the dynamic simulator must independently detect it (different
code path, different evidence), proving the two validators are not just
mirrors of the schedulers' own bookkeeping.
"""

import pytest

from repro.errors import SimulationError
from repro.ir.transforms import single_use_ddg
from repro.machine import clustered_vliw, unclustered_vliw
from repro.scheduling import (
    DistributedModuloScheduler,
    IterativeModuloScheduler,
    check_schedule,
)
from repro.scheduling.result import ScheduleResult
from repro.scheduling.schedule import Placement
from repro.simulator import simulate
from repro.workloads import make_kernel

from .conftest import build_reduction_loop, build_stream_loop


def rebuild(result, placements):
    return ScheduleResult(
        **{**result.__dict__, "placements": placements}
    )


@pytest.fixture()
def clustered_result():
    loop = make_kernel("fir_filter", taps=5)
    return DistributedModuloScheduler(clustered_vliw(4)).schedule(
        single_use_ddg(loop.ddg)
    )


class TestInjections:
    def test_swapped_producer_consumer_times(self, clustered_result):
        result = clustered_result
        edge = next(
            e
            for e in result.ddg.edges()
            if e.is_flow and e.omega == 0 and e.src != e.dst
        )
        placements = dict(result.placements)
        placements[edge.src], placements[edge.dst] = (
            placements[edge.dst],
            placements[edge.src],
        )
        broken = rebuild(result, placements)
        report = simulate(broken, 4, strict=False)
        assert not report.ok
        assert not check_schedule(broken).ok

    def test_delayed_producer_starves_consumer(self):
        # Delaying a producer past its consumer's issue leaves the
        # consumer reading a value that does not exist yet; the simulator
        # sees an empty (or misordered) stream.
        loop = build_reduction_loop()
        result = IterativeModuloScheduler(unclustered_vliw(2)).schedule(
            loop.ddg.copy()
        )
        edge = next(
            e
            for e in result.ddg.edges()
            if e.is_flow and e.omega == 0 and e.src != e.dst
        )
        placements = dict(result.placements)
        old = placements[edge.src]
        placements[edge.src] = Placement(
            old.time + 5 * result.ii + 1, old.cluster
        )
        broken = rebuild(result, placements)
        report = simulate(broken, 6, strict=False)
        assert not report.ok

    def test_cluster_teleport_breaks_fifo_routing(self, clustered_result):
        result = clustered_result
        # Move a producer two hops away: its consumers' queues go silent.
        edge = next(
            e
            for e in result.ddg.edges()
            if e.is_flow and e.src != e.dst
        )
        placements = dict(result.placements)
        old = placements[edge.src]
        placements[edge.src] = Placement(
            old.time, (old.cluster + 2) % result.machine.n_clusters
        )
        broken = rebuild(result, placements)
        # Static checker flags the communication conflict.
        assert not check_schedule(broken).ok

    def test_strict_mode_raises(self, clustered_result):
        result = clustered_result
        edge = next(
            e
            for e in result.ddg.edges()
            if e.is_flow and e.omega == 0 and e.src != e.dst
        )
        placements = dict(result.placements)
        placements[edge.src], placements[edge.dst] = (
            placements[edge.dst],
            placements[edge.src],
        )
        with pytest.raises(SimulationError):
            simulate(rebuild(result, placements), 4, strict=True)

    def test_untouched_schedule_stays_clean(self, clustered_result):
        report = simulate(clustered_result, 8)
        assert report.ok
        assert check_schedule(clustered_result).ok
