"""Tests for the experiment runner, metrics and figure builders."""

import os

import pytest

from repro.errors import ReproError
from repro.experiments import (
    FigureData,
    SweepConfig,
    backtracking_report,
    figure4,
    figure5,
    figure6,
    ii_overhead_fraction,
    moves_report,
    run_sweep,
)
from repro.experiments.metrics import LoopRun, aggregate_ipc, total_cycles
from repro.workloads import perfect_club_surrogate


@pytest.fixture(scope="module")
def small_runs():
    loops = perfect_club_surrogate(12, seed=5)
    return run_sweep(loops, SweepConfig(cluster_counts=[1, 2, 4]))


class TestRunner:
    def test_two_records_per_loop_per_k(self, small_runs):
        assert len(small_runs) == 12 * 3 * 2

    def test_schedulers_paired(self, small_runs):
        keys = {(r.loop_name, r.clusters, r.scheduler) for r in small_runs}
        for name in {r.loop_name for r in small_runs}:
            for k in (1, 2, 4):
                assert (name, k, "ims") in keys
                assert (name, k, "dms") in keys

    def test_shared_unroll_factor(self, small_runs):
        by_pair = {}
        for run in small_runs:
            by_pair.setdefault((run.loop_name, run.clusters), []).append(run)
        for (name, k), pair in by_pair.items():
            assert pair[0].unroll == pair[1].unroll

    def test_ii_at_least_mii(self, small_runs):
        for run in small_runs:
            assert run.ii >= run.mii

    def test_useful_fus_match_cluster_count(self, small_runs):
        for run in small_runs:
            assert run.useful_fus == 3 * run.clusters

    def test_cycles_formula(self, small_runs):
        for run in small_runs:
            expected = (run.kernel_iterations + run.stage_count - 1) * run.ii
            assert run.cycles == expected


class TestMetrics:
    def test_overhead_fraction_bounds(self, small_runs):
        for k in (1, 2, 4):
            assert 0.0 <= ii_overhead_fraction(small_runs, k) <= 1.0

    def test_no_overhead_single_cluster(self, small_runs):
        assert ii_overhead_fraction(small_runs, 1) == 0.0

    def test_total_cycles_positive(self, small_runs):
        assert total_cycles(small_runs, 2, "dms") > 0
        assert total_cycles(small_runs, 2, "dms", vectorizable_only=True) > 0

    def test_aggregate_ipc_monotone_with_width(self, small_runs):
        ipc1 = aggregate_ipc(small_runs, 1, "ims")
        ipc4 = aggregate_ipc(small_runs, 4, "ims")
        assert ipc4 > ipc1

    def test_clustered_never_beats_unclustered_cycles(self, small_runs):
        # DMS adds constraints to IMS's problem; aggregate cycles can
        # only degrade (1% slack: DMS's restarts occasionally out-pack
        # IMS's single greedy pass on individual loops).
        for k in (1, 2, 4):
            assert total_cycles(small_runs, k, "dms") >= 0.99 * total_cycles(
                small_runs, k, "ims"
            )

    def test_missing_data_raises(self, small_runs):
        with pytest.raises(ReproError):
            total_cycles(small_runs, 9, "dms")
        with pytest.raises(ReproError):
            ii_overhead_fraction(small_runs, 9)


class TestFigures:
    def test_figure4_shape(self, small_runs):
        fig = figure4(small_runs)
        assert fig.x == [1.0, 2.0, 4.0]
        assert fig.series_value("ii_increase_pct", 1.0) == 0.0

    def test_figure5_normalised_to_100(self, small_runs):
        fig = figure5(small_runs)
        for label in ("set1_unclustered", "set2_unclustered"):
            assert fig.series_value(label, 3.0) == pytest.approx(100.0)

    def test_figure5_monotone_decreasing_unclustered(self, small_runs):
        fig = figure5(small_runs)
        values = fig.series["set1_unclustered"]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_figure6_series_complete(self, small_runs):
        fig = figure6(small_runs)
        assert set(fig.series) == {
            "set1_unclustered",
            "set1_clustered",
            "set2_unclustered",
            "set2_clustered",
        }

    def test_backtracking_report(self, small_runs):
        fig = backtracking_report(small_runs)
        assert set(fig.series) == {"ims", "dms"}
        assert all(v >= 0 for series in fig.series.values() for v in series)

    def test_moves_report(self, small_runs):
        fig = moves_report(small_runs)
        assert fig.series["moves"][0] == 0.0  # no moves on 1 cluster

    def test_render_table(self, small_runs):
        text = figure4(small_runs).render_table()
        assert "clusters" in text
        assert "ii_increase_pct" in text

    def test_to_csv(self, small_runs, tmp_path):
        path = os.path.join(tmp_path, "fig4.csv")
        figure4(small_runs).to_csv(path)
        content = open(path).read()
        assert "clusters" in content.splitlines()[0]
        assert len(content.splitlines()) == 4

    def test_series_length_validated(self):
        with pytest.raises(ReproError):
            FigureData("x", "t", "x", [1.0, 2.0], {"bad": [1.0]})
