"""Tests for the independent schedule validator."""

import pytest

from repro.errors import ValidationError
from repro.ir import DEFAULT_LATENCIES
from repro.machine import clustered_vliw, unclustered_vliw
from repro.scheduling import (
    DistributedModuloScheduler,
    IterativeModuloScheduler,
    check_schedule,
    validate_schedule,
)
from repro.scheduling.result import ScheduleResult
from repro.scheduling.schedule import Placement

from .conftest import build_fanout_loop, build_stream_loop


def good_result():
    loop = build_stream_loop()
    return IterativeModuloScheduler(unclustered_vliw(2)).schedule(loop.ddg.copy())


def tampered(result, placement_overrides=None):
    placements = dict(result.placements)
    placements.update(placement_overrides or {})
    return ScheduleResult(
        loop_name=result.loop_name,
        machine=result.machine,
        scheduler=result.scheduler,
        ii=result.ii,
        res_mii=result.res_mii,
        rec_mii=result.rec_mii,
        ddg=result.ddg,
        placements=placements,
        latencies=result.latencies,
        stats=result.stats,
    )


class TestAccepts:
    def test_valid_ims_schedule(self):
        report = check_schedule(good_result())
        assert report.ok
        report.raise_if_failed()  # no exception

    def test_valid_dms_schedule(self):
        from repro.ir.transforms import single_use_ddg

        loop = build_fanout_loop(consumers=6)
        result = DistributedModuloScheduler(clustered_vliw(4)).schedule(
            single_use_ddg(loop.ddg)
        )
        assert check_schedule(result).ok


class TestRejects:
    def test_missing_placement(self):
        result = good_result()
        placements = dict(result.placements)
        del placements[0]
        broken = tampered(result)
        broken = ScheduleResult(
            **{**broken.__dict__, "placements": placements}
        )
        report = check_schedule(broken)
        assert not report.ok
        assert any("not scheduled" in p for p in report.problems)

    def test_dependence_violation(self):
        result = good_result()
        # Put the add (op 2) at time 0 while its producers finish later.
        broken = tampered(result, {2: Placement(0, 0)})
        report = check_schedule(broken)
        assert any("dependence violated" in p for p in report.problems)

    def test_resource_violation(self):
        result = good_result()
        # Pile all three memory ops (2 loads + 1 store) onto one cell of
        # the 2-unit L/S cluster.
        p0 = result.placements[0]
        broken = tampered(
            result,
            {
                1: Placement(p0.time, p0.cluster),
                4: Placement(p0.time, p0.cluster),
            },
        )
        report = check_schedule(broken)
        assert any("holds" in p and "capacity" in p for p in report.problems)

    def test_communication_violation(self):
        from repro.ir.transforms import single_use_ddg

        loop = build_fanout_loop(consumers=4)
        result = DistributedModuloScheduler(clustered_vliw(6)).schedule(
            single_use_ddg(loop.ddg)
        )
        # Move the producer load far from one consumer.
        consumer = next(
            e.dst for e in result.ddg.out_edges(0) if e.is_flow
        )
        target = (result.placements[consumer].cluster + 3) % 6
        broken = tampered(
            result, {0: Placement(result.placements[0].time, target)}
        )
        report = check_schedule(broken)
        assert any("communication conflict" in p for p in report.problems)

    def test_fanout_violation_on_clustered_machine(self):
        loop = build_fanout_loop(consumers=5)
        result = DistributedModuloScheduler(clustered_vliw(1)).schedule(
            loop.ddg.copy()
        )
        # Re-interpret the same schedule on a clustered machine: fan-out 5.
        broken = ScheduleResult(
            **{**result.__dict__, "machine": clustered_vliw(2)}
        )
        report = check_schedule(broken)
        assert any("fan-out" in p for p in report.problems)

    def test_validate_raises(self):
        result = good_result()
        broken = tampered(result, {2: Placement(0, 0)})
        with pytest.raises(ValidationError):
            validate_schedule(broken)

    def test_unknown_cluster_rejected(self):
        result = good_result()
        broken = tampered(result, {0: Placement(0, 99)})
        report = check_schedule(broken)
        assert any("invalid cluster" in p for p in report.problems)
