"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main


class TestInfo:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "HPCA" in out
        assert "fig4" in out


class TestSuiteStats:
    def test_stats_output(self, capsys):
        assert main(["suite-stats", "--loops", "20", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "loops:" in out
        assert "vectorizable:" in out
        assert "op mix:" in out


class TestSchedule:
    def test_schedule_clustered_kernel(self, capsys):
        assert main(["schedule", "dot_product", "--clusters", "3"]) == 0
        out = capsys.readouterr().out
        assert "DMS" in out
        assert "kernel:" in out

    def test_schedule_unclustered(self, capsys):
        assert main(["schedule", "daxpy", "--clusters", "2", "--unclustered"]) == 0
        out = capsys.readouterr().out
        assert "IMS" in out

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            main(["schedule", "nonsense"])


class TestTarget:
    def test_target_list(self, capsys):
        assert main(["target", "list"]) == 0
        out = capsys.readouterr().out
        assert "paper-ring-4" in out
        assert "mesh-3x3" in out
        assert "crossbar-8" in out

    def test_target_show_emits_toml(self, capsys):
        assert main(["target", "show", "mesh-3x3"]) == 0
        out = capsys.readouterr().out
        assert 'kind = "mesh"' in out
        assert "[topology.params]" in out

    def test_target_validate_ok(self, capsys):
        assert main(["target", "validate", "hetero-4"]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_target_validate_unknown(self, capsys):
        assert main(["target", "validate", "nope"]) == 2
        assert "invalid target" in capsys.readouterr().err

    def test_target_show_needs_name(self, capsys):
        assert main(["target", "show"]) == 2

    def test_target_file_round_trip_through_cli(self, capsys, tmp_path):
        main(["target", "show", "crossbar-8"])
        text = capsys.readouterr().out
        toml_lines = [line for line in text.splitlines() if not line.startswith("#")]
        path = tmp_path / "custom.toml"
        path.write_text("\n".join(toml_lines))
        assert main(["target", "validate", str(path)]) == 0

    def test_schedule_with_target(self, capsys):
        assert main(["schedule", "dot_product", "--target", "mesh-3x3"]) == 0
        out = capsys.readouterr().out
        assert "DMS" in out
        assert "mesh-3x3" in out

    def test_batch_with_targets(self, capsys):
        argv = [
            "batch",
            "--kernels",
            "daxpy,vector_add",
            "--target",
            "mesh-3x3,crossbar-8",
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert captured.out.count("DMS") == 4
        assert "2 kernels x 2 targets" in captured.err

    def test_batch_with_unknown_target(self, capsys):
        assert (
            main(["batch", "--kernels", "daxpy", "--target", "bogus"]) == 2
        )


class TestFigures:
    def test_fig4_small(self, capsys):
        assert main(["fig4", "--loops", "6", "--clusters", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "ii_increase_pct" in out

    def test_backtracking_small(self, capsys):
        assert main(["backtracking", "--loops", "5", "--clusters", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "dms" in out

    def test_csv_written(self, capsys, tmp_path):
        out_dir = str(tmp_path / "results")
        assert (
            main(
                [
                    "fig4",
                    "--loops",
                    "5",
                    "--clusters",
                    "1,2",
                    "--csv",
                    out_dir,
                ]
            )
            == 0
        )
        assert os.path.exists(os.path.join(out_dir, "figure4.csv"))

    def test_all_figures(self, capsys):
        assert main(["all-figures", "--loops", "5", "--clusters", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "Figure 5" in out
        assert "Figure 6" in out
        assert "Backtracking" in out

    def test_runs_out_jsonl(self, capsys, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        assert (
            main(
                [
                    "fig4",
                    "--loops",
                    "4",
                    "--clusters",
                    "1,2",
                    "--runs-out",
                    path,
                ]
            )
            == 0
        )
        from repro.experiments import load_runs

        assert len(load_runs(path)) == 4 * 2 * 2


class TestBatch:
    def test_batch_reports_and_cache(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        argv = [
            "batch",
            "--kernels",
            "daxpy,dot_product",
            "--clusters",
            "2,4",
            "--cache",
            cache_dir,
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.count("DMS") == 4
        # Second run hits the cache for every job.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.count("[cache]") == 4

    def test_batch_json_and_timings(self, capsys, tmp_path):
        import json

        path = str(tmp_path / "reports.jsonl")
        assert (
            main(
                [
                    "batch",
                    "--kernels",
                    "vector_add",
                    "--clusters",
                    "2",
                    "--json",
                    path,
                    "--timings",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "compilation time per pass" in out
        with open(path) as handle:
            records = [json.loads(line) for line in handle]
        assert len(records) == 1
        assert records[0]["loop"] == "vector_add"
        assert records[0]["scheduler"] == "dms"

    def test_batch_unknown_kernel_rejected(self, capsys):
        assert main(["batch", "--kernels", "nonsense", "--clusters", "2"]) == 2


class TestSupplementaryCommands:
    def test_storage(self, capsys):
        assert main(["storage", "--loops", "4", "--clusters", "1,4"]) == 0
        out = capsys.readouterr().out
        assert "central_rf_maxlive" in out

    def test_ablation(self, capsys):
        assert main(
            ["ablation", "restarts", "--loops", "4", "--clusters", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "restarts_1" in out

    def test_baseline(self, capsys):
        assert main(["baseline", "--loops", "3", "--clusters", "4"]) == 0
        out = capsys.readouterr().out
        assert "two_phase" in out

    def test_sensitivity(self, capsys):
        assert main(["sensitivity", "--loops", "3", "--clusters", "2"]) == 0
        out = capsys.readouterr().out
        assert "unit_latency" in out

    def test_unknown_ablation_rejected(self):
        with pytest.raises(SystemExit):
            main(["ablation", "gravity"])


class TestVerify:
    def test_verify_subset(self, capsys):
        assert main(
            [
                "verify",
                "--kernels",
                "dot_product,fir_filter",
                "--topologies",
                "ring,crossbar",
                "--clusters",
                "2,4",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "verified 8 program(s)" in out
        assert "0 failure(s)" in out

    def test_verify_short_ramp_and_unclustered(self, capsys):
        assert main(
            [
                "verify",
                "--kernels",
                "fir_filter",
                "--topologies",
                "ring",
                "--clusters",
                "2",
                "--short-ramp",
                "--unclustered",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "0 failure(s)" in out

    def test_verify_unknown_kernel(self, capsys):
        assert main(["verify", "--kernels", "nonsense"]) == 2

    def test_verify_unknown_topology(self, capsys):
        assert main(["verify", "--topologies", "moebius"]) == 2


class TestFuzz:
    def test_fuzz_seeded_smoke(self, capsys, tmp_path):
        out_path = tmp_path / "fuzz.json"
        assert main(
            [
                "fuzz",
                "--seed",
                "1999",
                "--trials",
                "5",
                "--mutants",
                "4",
                "--out",
                str(out_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "5 trial(s)" in out
        assert "OK" in out
        import json

        report = json.loads(out_path.read_text())
        assert report["ok"] is True
        assert report["trials_run"] == 5
