"""Tests for the declarative target-description API.

Covers the serialisation round-trip, machine-file loading (TOML/JSON,
good and bad), the builtin registry, session-API integration (requests
built from target names, cache invalidation on target edits) and the
acceptance property: the example mesh and crossbar machine files compile
the full kernel suite through the batch compiler with the independent
checker enabled.
"""

import json
import os

import pytest

from repro.api import BatchCompiler, CompilationRequest
from repro.api.cache import content_hash
from repro.errors import TargetError
from repro.ir.opcodes import DEFAULT_LATENCIES, LatencyModel
from repro.scheduling.checker import check_schedule
from repro.targets import (
    TargetSpec,
    get_target,
    load_target,
    loads_target,
    register_target,
    resolve_target,
    save_target,
    target_from_dict,
    target_to_toml,
    target_names,
)
from repro.workloads import KERNELS, make_kernel

from .conftest import build_stream_loop

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples", "targets")


class TestRoundTrip:
    @pytest.mark.parametrize("name", target_names())
    def test_dict_round_trip(self, name):
        target = get_target(name)
        assert target_from_dict(target.to_dict()) == target

    @pytest.mark.parametrize("name", target_names())
    def test_toml_round_trip(self, name):
        target = get_target(name)
        assert loads_target(target_to_toml(target), format="toml") == target

    def test_json_round_trip(self):
        target = get_target("mesh-3x3")
        text = json.dumps(target.to_dict())
        assert loads_target(text, format="json") == target

    def test_files_round_trip(self, tmp_path):
        target = get_target("hetero-4")
        for suffix in (".toml", ".json"):
            path = tmp_path / f"target{suffix}"
            save_target(target, path)
            assert load_target(path) == target

    def test_description_and_latencies_survive(self):
        target = get_target("hetero-4")
        reloaded = target_from_dict(target.to_dict())
        assert reloaded.description == target.description
        assert reloaded.latencies.load == 4
        assert reloaded.latencies.mul == 4


class TestBadFiles:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TargetError, match="cannot read"):
            load_target(tmp_path / "nope.toml")

    def test_unsupported_suffix(self, tmp_path):
        path = tmp_path / "target.yaml"
        path.write_text("name: x")
        with pytest.raises(TargetError, match="unsupported suffix"):
            load_target(path)

    def test_invalid_toml_text(self):
        with pytest.raises(TargetError, match="invalid TOML"):
            loads_target("name = [unterminated", format="toml")

    def test_invalid_json_text(self):
        with pytest.raises(TargetError, match="invalid JSON"):
            loads_target("{", format="json")

    def test_missing_name(self):
        with pytest.raises(TargetError, match="name"):
            target_from_dict({"clusters": [{"mem": 1}]})

    def test_missing_clusters(self):
        with pytest.raises(TargetError, match="clusters"):
            target_from_dict({"name": "x"})

    def test_unknown_top_level_key(self):
        with pytest.raises(TargetError, match="unknown key"):
            target_from_dict(
                {"name": "x", "clusters": [{"mem": 1}], "frobnicate": 1}
            )

    def test_unknown_cluster_key(self):
        with pytest.raises(TargetError, match="unknown key"):
            target_from_dict({"name": "x", "clusters": [{"mem": 1, "gpu": 2}]})

    def test_unknown_topology_kind(self):
        with pytest.raises(TargetError, match="unknown topology"):
            target_from_dict(
                {
                    "name": "x",
                    "clusters": [{"mem": 1}, {"mem": 1}],
                    "topology": {"kind": "hypercube"},
                }
            )

    def test_untileable_mesh_shape(self):
        with pytest.raises(TargetError, match="does not tile"):
            target_from_dict(
                {
                    "name": "x",
                    "clusters": [{}, {}, {}],
                    "topology": {"kind": "mesh", "params": {"rows": 2, "cols": 2}},
                }
            )

    def test_malformed_topology_params(self):
        for params in ({"rosw": 3}, {"rows": "three"}, {"cols": 0}):
            with pytest.raises(TargetError):
                target_from_dict(
                    {
                        "name": "x",
                        "clusters": [{}, {}, {}, {}],
                        "topology": {"kind": "mesh", "params": params},
                    }
                )

    def test_bad_latency_value(self):
        with pytest.raises(TargetError):
            target_from_dict(
                {"name": "x", "clusters": [{}], "latencies": {"load": 0}}
            )

    def test_bad_cluster_count(self):
        with pytest.raises(TargetError, match="count"):
            target_from_dict({"name": "x", "clusters": [{"count": 0}]})

    def test_empty_cluster_list(self):
        with pytest.raises(TargetError, match="non-empty"):
            target_from_dict({"name": "x", "clusters": []})


class TestRegistry:
    def test_builtins_present(self):
        names = target_names()
        for expected in ("paper-ring-4", "mesh-3x3", "crossbar-8", "hetero-4"):
            assert expected in names

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(TargetError, match="paper-ring-4"):
            get_target("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(TargetError, match="already registered"):
            register_target(get_target("paper-ring-4"))

    def test_resolve_prefers_files_for_paths(self):
        target = resolve_target(os.path.join(EXAMPLES, "mesh-3x3.toml"))
        assert target.name == "mesh-3x3-file"
        assert target.topology_kind == "mesh"

    def test_resolve_falls_back_to_registry(self):
        assert resolve_target("crossbar-8") is get_target("crossbar-8")


class TestRequestIntegration:
    def test_request_accepts_target_name(self, stream_loop):
        request = CompilationRequest(loop=stream_loop, machine="paper-ring-4")
        assert request.machine.n_clusters == 4
        assert request.machine.topology_kind == "ring"

    def test_request_accepts_target_file(self, stream_loop):
        request = CompilationRequest(
            loop=stream_loop, machine=os.path.join(EXAMPLES, "crossbar-8.toml")
        )
        assert request.machine.topology_kind == "crossbar"
        # The target's latency model rides along.
        assert request.latencies.load == 3

    def test_request_adopts_target_latencies(self, stream_loop):
        request = CompilationRequest(loop=stream_loop, machine="hetero-4")
        assert request.latencies == get_target("hetero-4").latencies

    def test_explicit_latencies_win_over_target(self, stream_loop):
        fast = LatencyModel(load=1)
        request = CompilationRequest(
            loop=stream_loop, machine="hetero-4", latencies=fast
        )
        assert request.latencies is fast

    def test_explicit_default_latencies_win_over_target(self, stream_loop):
        request = CompilationRequest(
            loop=stream_loop, machine="hetero-4", latencies=DEFAULT_LATENCIES
        )
        assert request.latencies is DEFAULT_LATENCIES

    def test_plain_machine_inherits_default_latencies(self, clustered4, stream_loop):
        request = CompilationRequest(loop=stream_loop, machine=clustered4)
        assert request.latencies is DEFAULT_LATENCIES

    def test_unknown_target_name_raises(self, stream_loop):
        with pytest.raises(TargetError):
            CompilationRequest(loop=stream_loop, machine="not-a-target")


class TestCacheInvalidation:
    def test_key_changes_with_target_latencies(self, stream_loop):
        base = get_target("mesh-3x3")
        edited = target_from_dict(
            {**base.to_dict(), "latencies": {**base.to_dict()["latencies"], "mul": 5}}
        )
        key_a = content_hash(CompilationRequest(loop=stream_loop, machine=base))
        key_b = content_hash(CompilationRequest(loop=stream_loop, machine=edited))
        assert key_a != key_b

    def test_key_changes_with_topology_params(self, stream_loop):
        base = get_target("mesh-3x3").to_dict()
        reshaped = {**base, "topology": {"kind": "mesh", "params": {"rows": 1, "cols": 9}}}
        key_a = content_hash(
            CompilationRequest(loop=stream_loop, machine=target_from_dict(base))
        )
        key_b = content_hash(
            CompilationRequest(loop=stream_loop, machine=target_from_dict(reshaped))
        )
        assert key_a != key_b

    def test_key_stable_across_file_reload(self, stream_loop, tmp_path):
        target = get_target("crossbar-8")
        path = tmp_path / "t.toml"
        save_target(target, path)
        key_a = content_hash(CompilationRequest(loop=stream_loop, machine=target))
        key_b = content_hash(
            CompilationRequest(loop=stream_loop, machine=str(path))
        )
        assert key_a == key_b

    def test_batch_cache_invalidates_on_target_edit(self, stream_loop, tmp_path):
        """Editing the machine file re-compiles instead of serving stale."""
        path = tmp_path / "t.toml"
        target = get_target("paper-ring-2")
        save_target(target, path)
        compiler = BatchCompiler(cache=tmp_path / "cache")
        request = CompilationRequest(loop=stream_loop, machine=str(path))
        (first,) = compiler.compile_many([request])
        assert not first.cache_hit
        (warm,) = compiler.compile_many([request])
        assert warm.cache_hit
        # Edit the file: slower multiplier.
        edited = target_from_dict(
            {**target.to_dict(), "latencies": {"mul": 6}}
        )
        save_target(edited, path)
        (cold,) = compiler.compile_many(
            [CompilationRequest(loop=stream_loop, machine=str(path))]
        )
        assert not cold.cache_hit


class TestAcceptance:
    """The ISSUE's acceptance property: mesh + crossbar machine files
    compile the full kernel suite and pass the independent checker."""

    @pytest.mark.parametrize(
        "filename", ["mesh-3x3.toml", "crossbar-8.toml"]
    )
    def test_full_kernel_suite_on_machine_file(self, filename):
        target = load_target(os.path.join(EXAMPLES, filename))
        requests = [
            CompilationRequest(
                loop=make_kernel(name),
                machine=target,
                allocate=False,
                validate=True,  # validate_schedule raises inside the pass
            )
            for name in sorted(KERNELS)
        ]
        compiler = BatchCompiler(workers=max(1, (os.cpu_count() or 2) - 1))
        reports = compiler.compile_many(requests)
        assert len(reports) == len(KERNELS)
        for report in reports:
            assert check_schedule(report.result).ok
            if filename.startswith("crossbar"):
                # Every pair is adjacent: DMS must never build a chain.
                assert report.result.stats.chains_built == 0
