"""End-to-end tests for the compilation service (``repro serve``).

A real :class:`~repro.service.daemon.CompileService` runs on its own
event loop in a daemon thread (``workers=0``: in-process thread
executor, so no process spawn under pytest) and the blocking
:class:`~repro.service.client.ServiceClient` drives it over a real
socket.  Admission/coalescing/drain tests inject a gated ``compile_fn``
and a one-wide executor so queue states are deterministic.

Also covers the cache tiers the daemon composes (``MemoryCache`` /
``TieredCache``), the ``BatchCompiler`` shared-pool injection and the
parallel oracle fan-out (:func:`repro.validate.verify_many`).
"""

import asyncio
import contextlib
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import CompilationRequest, Toolchain, compile_many, content_hash
from repro.api.cache import CompilationCache, MemoryCache, TieredCache
from repro.config import DEFAULT_CONFIG
from repro.errors import CacheError, ServiceError
from repro.machine.machine import clustered_vliw
from repro.scheduling.fingerprint import schedule_fingerprint
from repro.service import NO_RETRY, CompileService, ServiceClient
from repro.validate import verify_many
from repro.workloads import make_kernel

LADDER = {"search": "ladder"}


def jsonable(value):
    """Tuples -> lists etc., matching what a client reads off the wire."""
    return json.loads(json.dumps(value, default=str))


def wait_until(predicate, timeout=30.0, interval=0.01, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {what}")


@contextlib.contextmanager
def running_service(**kwargs):
    """A live CompileService on its own loop in a daemon thread.

    Yields ``(service, client, loop)``; the loop handle lets tests call
    loop-affine methods (``request_drain``) via ``call_soon_threadsafe``.
    """
    kwargs.setdefault("workers", 0)
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    box = {}

    async def _main():
        box["stop"] = asyncio.Event()
        try:
            service = CompileService(**kwargs)
            host, port = await service.start()
        except Exception as err:  # surface startup failures to the test thread
            box["error"] = err
            ready.set()
            return
        box["service"] = service
        box["address"] = f"{host}:{port}"
        ready.set()
        await box["stop"].wait()
        await service.close()

    thread = threading.Thread(
        target=lambda: (asyncio.set_event_loop(loop), loop.run_until_complete(_main())),
        daemon=True,
    )
    thread.start()
    assert ready.wait(30), "service thread never came up"
    if "error" in box:
        raise box["error"]
    try:
        yield box["service"], ServiceClient(box["address"], timeout=60), loop
    finally:
        loop.call_soon_threadsafe(box["stop"].set)
        thread.join(timeout=30)
        loop.close()


# ----------------------------------------------------------------------
# Service <-> local toolchain equivalence
# ----------------------------------------------------------------------


def local_fingerprint(payload):
    """Fingerprint of the same compile run through a local Toolchain."""
    kwargs = {}
    if "kernel_args" in payload:
        kwargs = payload["kernel_args"]
    request = CompilationRequest(
        loop=make_kernel(payload["kernel"], **kwargs),
        machine=clustered_vliw(
            payload.get("clusters", 4), topology=payload.get("topology", "ring")
        ),
        config=DEFAULT_CONFIG.with_(**payload.get("config", {})),
    )
    report = Toolchain.default().compile(request)
    return jsonable(schedule_fingerprint(report.result))


def test_service_result_matches_local_toolchain():
    payload = {"kernel": "fir_filter", "clusters": 4, "config": dict(LADDER)}
    with running_service() as (service, client, _loop):
        result = client.compile(payload)
    assert result["status"] == "done"
    assert result["served_from"] == "compile"
    assert result["fingerprint"] == local_fingerprint(payload)
    assert result["report"]["ii"] >= 1
    assert result["cache_key"]


def test_compile_request_roundtrip_matches_local():
    # Serialize a *local* request (loop ships as an explicit DDG) and
    # check the daemon reproduces the local compile bit-for-bit.
    request = CompilationRequest(
        loop=make_kernel("complex_multiply"),
        machine=clustered_vliw(4, topology="mesh"),
        config=DEFAULT_CONFIG.with_(search="ladder"),
    )
    local = Toolchain.default().compile(request)
    with running_service() as (service, client, _loop):
        result = client.compile_request(request)
    assert result["fingerprint"] == jsonable(schedule_fingerprint(local.result))
    assert result["report"]["ii"] == local.result.ii


# ----------------------------------------------------------------------
# LRU tier / warm repeats
# ----------------------------------------------------------------------


def test_warm_repeat_served_from_memory_without_compiling():
    payload = {"kernel": "daxpy", "clusters": 2, "config": dict(LADDER)}
    with running_service() as (service, client, _loop):
        cold = client.compile(payload)
        warm = client.compile(payload)
        metrics = client.metrics()
    assert cold["served_from"] == "compile"
    assert warm["served_from"] == "memory"
    assert warm["fingerprint"] == cold["fingerprint"]
    # The warm repeat never reached the scheduler.
    assert metrics["compiles"]["started"] == 1
    assert metrics["cache"]["memory_hits"] == 1
    assert metrics["cache"]["hit_ratio"] == pytest.approx(0.5)


def test_disk_hit_promotes_into_memory_across_restarts(tmp_path):
    payload = {"kernel": "vector_add", "clusters": 2, "config": dict(LADDER)}
    cache_dir = tmp_path / "cache"
    with running_service(disk_cache=str(cache_dir)) as (service, client, _loop):
        first = client.compile(payload)
        assert first["served_from"] == "compile"
    # Fresh daemon, same disk tier: LRU is cold, disk answers, and the
    # entry is promoted so the next repeat is a memory hit.
    with running_service(disk_cache=str(cache_dir)) as (service, client, _loop):
        promoted = client.compile(payload)
        warm = client.compile(payload)
        metrics = client.metrics()
    assert promoted["served_from"] == "disk"
    assert warm["served_from"] == "memory"
    assert promoted["fingerprint"] == first["fingerprint"]
    assert metrics["compiles"]["started"] == 0
    assert metrics["cache"]["disk_hits"] == 1
    assert metrics["cache"]["memory_hits"] == 1


def test_lru_eviction_bounds_the_memory_tier():
    payloads = [
        {"kernel": "daxpy", "clusters": 2, "config": dict(LADDER)},
        {"kernel": "fir_filter", "clusters": 2, "config": dict(LADDER)},
        {"kernel": "dot_product", "clusters": 2, "config": dict(LADDER)},
    ]
    with running_service(lru_capacity=2) as (service, client, _loop):
        for payload in payloads:
            client.compile(payload)
        # Capacity 2: the oldest entry (payloads[0]) was evicted...
        evicted = client.compile(payloads[0])
        # ...while the newest (payloads[2]) is still resident.
        resident = client.compile(payloads[2])
        metrics = client.metrics()
    assert evicted["served_from"] == "compile"
    assert resident["served_from"] == "memory"
    assert metrics["compiles"]["started"] == 4
    assert metrics["cache"]["evictions"] >= 2
    assert metrics["cache"]["memory_entries"] == 2
    assert metrics["cache"]["memory_capacity"] == 2


# ----------------------------------------------------------------------
# In-flight dedup / coalescing
# ----------------------------------------------------------------------


def test_identical_concurrent_requests_coalesce_to_one_compile():
    fanout = 4
    gate = threading.Event()
    compiles = []

    def gated_compile(toolchain, request):
        compiles.append(request.loop.name)
        gate.wait(60)
        return toolchain.compile(request)

    payload = {"kernel": "complex_multiply", "clusters": 4, "config": dict(LADDER)}
    with running_service(compile_fn=gated_compile) as (service, client, _loop):
        with ThreadPoolExecutor(max_workers=fanout) as pool:
            futures = [
                pool.submit(client.compile, dict(payload)) for _ in range(fanout)
            ]
            # Release the compile only once every request has arrived, so
            # no straggler is served from the LRU after completion.
            wait_until(
                lambda: service.metrics.requests_total == fanout,
                what="all concurrent requests admitted",
            )
            gate.set()
            results = [future.result(timeout=60) for future in futures]
        metrics = client.metrics()
    sources = sorted(r["served_from"] for r in results)
    assert sources == ["coalesced"] * (fanout - 1) + ["compile"]
    assert len(compiles) == 1
    assert metrics["compiles"]["started"] == 1
    assert metrics["dedup"]["coalesced"] == fanout - 1
    assert len({json.dumps(r["fingerprint"]) for r in results}) == 1
    # All joiners share the creator's job id.
    assert len({r["job"] for r in results}) == 1


# ----------------------------------------------------------------------
# Admission control: bounded queue + priority shedding
# ----------------------------------------------------------------------


def test_admission_sheds_low_priority_then_rejects():
    gate = threading.Event()

    def gated_compile(toolchain, request):
        gate.wait(60)
        return toolchain.compile(request)

    def payload(clusters, priority, topology="ring"):
        return {
            "kernel": "daxpy",
            "clusters": clusters,
            "topology": topology,
            "priority": priority,
            "config": dict(LADDER),
        }

    with running_service(
        executor=ThreadPoolExecutor(max_workers=1),
        compile_fn=gated_compile,
        max_queue_depth=2,
    ) as (service, client, _loop):
        # One running blocker + two queued low-priority jobs = full queue.
        blocker = client.compile(payload(2, "normal"), wait=False)
        wait_until(lambda: service._running == 1, what="blocker dispatched")
        low_a = client.compile(payload(4, "low"), wait=False)
        low_b = client.compile(payload(8, "low"), wait=False)
        assert sum(service.queue_depths().values()) == 2

        # A normal-priority arrival sheds the newest low job (low_b).
        normal = client.compile(payload(4, "normal", "mesh"), wait=False)
        shed_doc = client.job(low_b["job"])
        assert shed_doc["status"] == "shed"
        assert "queue full" in shed_doc["error"]

        # Queue is full again with [low_a, normal]; a second normal can
        # still shed low_a, and a third finds nothing lower to shed.
        normal2 = client.compile(payload(8, "normal", "mesh"), wait=False)
        assert client.job(low_a["job"])["status"] == "shed"
        # The 429 carries Retry-After, which the default client would
        # honor and retry; probe with a no-retry client so the rejected
        # counter stays exact.
        probe = ServiceClient((client.host, client.port), policy=NO_RETRY)
        with pytest.raises(ServiceError) as rejected:
            probe.compile(payload(2, "normal", "crossbar"), wait=False)
        assert rejected.value.status == 429
        assert rejected.value.retry_after is not None

        metrics = client.metrics()
        assert metrics["admission"]["shed"] == 2
        assert metrics["admission"]["rejected"] == 1

        gate.set()
        for receipt in (blocker, normal, normal2):
            wait_until(
                lambda r=receipt: client.job(r["job"])["status"] == "done",
                what=f"job {receipt['job']} to finish",
            )


def test_shed_job_fails_its_waiting_client_with_503():
    gate = threading.Event()

    def gated_compile(toolchain, request):
        gate.wait(60)
        return toolchain.compile(request)

    def payload(clusters, priority):
        return {
            "kernel": "daxpy",
            "clusters": clusters,
            "priority": priority,
            "config": dict(LADDER),
        }

    with running_service(
        executor=ThreadPoolExecutor(max_workers=1),
        compile_fn=gated_compile,
        max_queue_depth=1,
    ) as (service, client, _loop):
        blocker = client.compile(payload(2, "normal"), wait=False)
        wait_until(lambda: service._running == 1, what="blocker dispatched")
        with ThreadPoolExecutor(max_workers=1) as pool:
            # A low-priority client blocks on its queued job...
            waiting = pool.submit(client.compile, payload(4, "low"))
            wait_until(
                lambda: sum(service.queue_depths().values()) == 1,
                what="low job queued",
            )
            # ...until a normal-priority arrival sheds it.
            client.compile(payload(8, "normal"), wait=False)
            with pytest.raises(ServiceError) as shed:
                waiting.result(timeout=30)
            assert shed.value.status == 503
            assert "shed" in str(shed.value)
        gate.set()
        wait_until(
            lambda: client.job(blocker["job"])["status"] == "done",
            what="blocker to finish",
        )


def test_priority_lanes_dispatch_high_before_low():
    gate = threading.Event()
    order = []

    def recording_compile(toolchain, request):
        order.append(request.machine.n_clusters)
        if request.machine.n_clusters == 2:
            gate.wait(60)
        return toolchain.compile(request)

    def payload(clusters, priority):
        return {
            "kernel": "daxpy",
            "clusters": clusters,
            "priority": priority,
            "config": dict(LADDER),
        }

    with running_service(
        executor=ThreadPoolExecutor(max_workers=1),
        compile_fn=recording_compile,
    ) as (service, client, _loop):
        blocker = client.compile(payload(2, "normal"), wait=False)
        wait_until(lambda: service._running == 1, what="blocker dispatched")
        low = client.compile(payload(4, "low"), wait=False)
        high = client.compile(payload(8, "high"), wait=False)
        assert sum(service.queue_depths().values()) == 2
        gate.set()
        for receipt in (blocker, low, high):
            wait_until(
                lambda r=receipt: client.job(r["job"])["status"] == "done",
                what=f"job {receipt['job']} to finish",
            )
    # The high-priority job (8 clusters) jumped the earlier low one.
    assert order == [2, 8, 4]


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------


def test_graceful_drain_finishes_inflight_then_refuses():
    gate = threading.Event()

    def gated_compile(toolchain, request):
        gate.wait(60)
        return toolchain.compile(request)

    payload = {"kernel": "fir_filter", "clusters": 2, "config": dict(LADDER)}
    with running_service(compile_fn=gated_compile) as (service, client, loop):
        receipt = client.compile(payload, wait=False)
        wait_until(lambda: service._running == 1, what="job dispatched")
        loop.call_soon_threadsafe(service.request_drain)
        wait_until(lambda: service._draining, what="drain flag")

        health = client.healthz()
        assert health["status"] == "draining"
        with pytest.raises(ServiceError) as refused:
            client.compile({"kernel": "daxpy", "clusters": 2})
        assert refused.value.status == 503

        # Not drained yet: the admitted job is still running.
        assert not service._drained.is_set()
        gate.set()
        wait_until(service._drained.is_set, what="drained event")
        finished = client.job(receipt["job"])
        assert finished["status"] == "done"
        assert client.metrics()["draining"] is True


# ----------------------------------------------------------------------
# Event streams and status/error surfaces
# ----------------------------------------------------------------------


def test_event_stream_carries_passes_and_ii_trajectory():
    payload = {"kernel": "dot_product", "clusters": 4, "config": dict(LADDER)}
    with running_service() as (service, client, _loop):
        result = client.compile(payload)
        events = list(client.events(result["job"]))
        status = client.job(result["job"])
    names = [event["event"] for event in events]
    assert names[0] == "admitted"
    assert "started" in names
    assert names[-1] == "done"
    passes = [event["name"] for event in events if event["event"] == "pass"]
    assert passes  # per-pass progress made it onto the wire
    trajectory = next(e for e in events if e["event"] == "ii_trajectory")
    assert trajectory["trajectory"], "II trajectory events must be non-empty"
    assert trajectory["trajectory"][-1] == result["report"]["ii"]
    assert status["status"] == "done"
    assert status["result"]["fingerprint"] == result["fingerprint"]


def test_http_error_surfaces():
    with running_service() as (service, client, _loop):
        # Unknown kernel -> 400 from payload validation.
        with pytest.raises(ServiceError) as bad_kernel:
            client.compile({"kernel": "not_a_kernel"})
        assert bad_kernel.value.status == 400
        # Scheduler-level failure -> 422.
        with pytest.raises(ServiceError) as bad_config:
            client.compile({"kernel": "daxpy", "config": {"search": "nope"}})
        assert bad_config.value.status == 400
        # Routing errors.
        assert client._roundtrip("GET", "/nope")[0] == 404
        assert client._roundtrip("POST", "/healthz")[0] == 405
        assert client._roundtrip("GET", "/jobs/abc")[0] == 400
        with pytest.raises(ServiceError) as missing:
            client.job(999999)
        assert missing.value.status == 404
        # Empty payload (neither kernel nor loop) -> 400, daemon stays up.
        status, _, document = client._roundtrip("POST", "/compile", {})
        assert status == 400
        assert "kernel" in document["error"]
        assert client.healthz()["status"] == "ok"


# ----------------------------------------------------------------------
# Cache tiers (unit level)
# ----------------------------------------------------------------------


def _tiny_report():
    request = CompilationRequest(
        loop=make_kernel("daxpy"),
        machine=clustered_vliw(2),
        config=DEFAULT_CONFIG.with_(search="ladder"),
    )
    return Toolchain.default().compile(request), request


def test_memory_cache_lru_semantics():
    report, request = _tiny_report()
    cache = MemoryCache(capacity=2)
    cache.put("a", report)
    cache.put("b", report)
    assert cache.get("a") is not None  # refresh 'a': now 'b' is oldest
    cache.put("c", report)
    assert "b" not in cache
    assert "a" in cache and "c" in cache
    assert cache.evictions == 1
    assert cache.get("b") is None
    assert cache.stats.misses == 1
    # Returned entries are isolated copies: flag mutation doesn't leak.
    hit = cache.get("a")
    assert hit.cache_hit is True
    assert cache._entries["a"].cache_hit is False
    with pytest.raises(CacheError):
        MemoryCache(capacity=0)


def test_tiered_cache_reports_answering_tier(tmp_path):
    report, request = _tiny_report()
    disk = CompilationCache(tmp_path / "cache")
    tiered = TieredCache(MemoryCache(capacity=4), disk)
    key = content_hash(request)
    assert tiered.get_tiered(key) == (None, None)
    tiered.put(key, report)
    _, tier = tiered.get_tiered(key)
    assert tier == "memory"
    # Cold memory tier (fresh daemon), warm disk: answered from disk,
    # then promoted so the second lookup is a memory hit.
    rebooted = TieredCache(MemoryCache(capacity=4), disk)
    _, tier = rebooted.get_tiered(key)
    assert tier == "disk"
    _, tier = rebooted.get_tiered(key)
    assert tier == "memory"
    counters = rebooted.counters()
    assert counters["lookups"] == 2
    assert counters["disk_hits"] == 1
    assert counters["memory_hits"] == 1
    assert counters["hit_ratio"] == pytest.approx(1.0)


def test_tiered_cache_works_without_disk():
    report, request = _tiny_report()
    tiered = TieredCache(MemoryCache(capacity=2), None)
    tiered.put("k", report)
    hit, tier = tiered.get_tiered("k")
    assert tier == "memory" and hit is not None
    assert tiered.counters()["disk_hits"] == 0


# ----------------------------------------------------------------------
# Shared-pool batch compiles + parallel oracle
# ----------------------------------------------------------------------


def test_batch_compiler_rides_injected_pool():
    requests = [
        CompilationRequest(
            loop=make_kernel(name),
            machine=clustered_vliw(2),
            config=DEFAULT_CONFIG.with_(search="ladder"),
        )
        for name in ("daxpy", "vector_add", "dot_product")
    ]
    baseline = [
        Toolchain.default().compile(request) for request in requests
    ]
    pool = ThreadPoolExecutor(max_workers=2)
    try:
        pooled = compile_many(requests, pool=pool)
    finally:
        pool.shutdown()
    assert [schedule_fingerprint(r.result) for r in pooled] == [
        schedule_fingerprint(r.result) for r in baseline
    ]


def test_verify_many_parallel_matches_serial():
    reports = [
        Toolchain.default().compile(
            CompilationRequest(
                loop=make_kernel(name),
                machine=clustered_vliw(2),
                config=DEFAULT_CONFIG.with_(search="ladder"),
            )
        )
        for name in ("daxpy", "vector_add")
    ]
    jobs = [(report.compiled, 8) for report in reports]
    serial = verify_many(jobs, workers=1)
    parallel = verify_many(jobs, workers=2)
    assert all(r.ok for r in serial)
    assert [
        (r.oracle.loop_name, r.oracle.iterations, r.matched_stores, r.ok)
        for r in parallel
    ] == [
        (r.oracle.loop_name, r.oracle.iterations, r.matched_stores, r.ok)
        for r in serial
    ]
