"""The differential execution oracle: value-level VLIW program execution.

The strongest end-to-end statement in the repository: the *emitted*
program (prologue listing, kernel re-issue, epilogue listing, queue pops
through the actual allocation) must store bit-identical values to a
sequential execution of the original loop.  These tests cover the
executor's discipline checks, the exactness of the ramp listings against
the timing simulator's issue events, and the acceptance sweep across the
full kernel suite x every concrete topology x {2, 4, 8} clusters.
"""

import dataclasses

import pytest

from repro.api import CompilationRequest, Toolchain
from repro.codegen.kernel import CycleIssue, _ramp_cycles, build_program
from repro.errors import CodegenError, SimulationError
from repro.machine import clustered_vliw, unclustered_vliw
from repro.scheduling.pipeline import CompiledLoop
from repro.scheduling.schedule import Placement
from repro.simulator import simulate
from repro.validate import execute_program, verify_compiled, verify_loop
from repro.validate.oracle import _enumerate_issues, OracleReport
from repro.workloads import KERNELS, make_kernel

from .conftest import build_fanout_loop, build_reduction_loop, build_stream_loop

TOPOLOGIES = ("ring", "linear", "mesh", "torus", "crossbar")
CLUSTER_COUNTS = (2, 4, 8)


def compile_loop_on(loop, machine, **kwargs):
    report = Toolchain.default().compile(
        CompilationRequest(loop=loop, machine=machine, **kwargs)
    )
    return report.compiled


class TestExecuteProgram:
    def test_valid_program_executes_clean(self):
        compiled = compile_loop_on(build_stream_loop(), clustered_vliw(4))
        result = compiled.result
        program = build_program(result, compiled.allocation, ramp_iterations=6)
        report = execute_program(
            program,
            result.ddg,
            result.latencies,
            6,
            allocation=compiled.allocation,
            machine=result.machine,
        )
        assert report.ok, report.problems
        assert report.issued == 6 * len(result.ddg)
        assert report.store_streams

    def test_unclustered_runs_without_allocation(self):
        compiled = compile_loop_on(build_stream_loop(), unclustered_vliw(2))
        result = compiled.result
        program = build_program(result, ramp_iterations=5)
        report = execute_program(program, result.ddg, result.latencies, 5)
        assert report.ok, report.problems

    def test_invalid_iterations_rejected(self):
        compiled = compile_loop_on(build_stream_loop(), clustered_vliw(2))
        program = build_program(compiled.result, compiled.allocation)
        with pytest.raises(SimulationError):
            execute_program(
                program, compiled.result.ddg, compiled.result.latencies, 0
            )

    def test_ramp_mismatch_reported(self):
        """A program whose ramp listings were built for a different run
        depth must be rejected, not silently mis-executed."""
        compiled = compile_loop_on(
            make_kernel("fir_filter", taps=8), clustered_vliw(2)
        )
        result = compiled.result
        assert result.stage_count >= 3
        program = build_program(result, compiled.allocation, ramp_iterations=2)
        report = execute_program(
            program, result.ddg, result.latencies, result.stage_count + 2
        )
        assert not report.ok
        assert any("ramp listings" in p for p in report.problems)


class TestRampExactness:
    """Satellite: prologue + kernel re-issues + epilogue must equal the
    simulator's issue events exactly — for deep *and* short runs."""

    @pytest.mark.parametrize("kernel", ["fir_filter", "stencil5", "lms_update"])
    @pytest.mark.parametrize("short", [False, True])
    def test_issue_multiset_matches_schedule(self, kernel, short):
        compiled = compile_loop_on(make_kernel(kernel), clustered_vliw(4))
        result = compiled.result
        iterations = (
            max(1, result.stage_count - 1)
            if short
            else result.stage_count + 3
        )
        program = build_program(
            result, compiled.allocation, ramp_iterations=iterations
        )
        report = OracleReport(
            loop_name=result.loop_name,
            machine_name=result.machine.name,
            ii=result.ii,
            stage_count=result.stage_count,
            iterations=iterations,
        )
        issues = _enumerate_issues(program, iterations, report)
        assert report.ok, report.problems
        got = sorted((cycle, binding.op_id) for cycle, _it, binding in issues)
        expected = sorted(
            (placement.time + i * result.ii, op_id)
            for op_id, placement in result.placements.items()
            for i in range(iterations)
        )
        assert got == expected
        # Cross-check the totals against the timing simulator.
        sim = simulate(result, iterations, allocation=compiled.allocation)
        assert sim.issued_total == len(issues)

    def test_short_run_double_issue_is_caught(self):
        """Regression: ramp listings used to span the full (SC-1)*II
        prologue even when ramp_iterations < SC, re-listing issues the
        drain phase also covers.  The oracle flags the double issue."""
        compiled = compile_loop_on(
            make_kernel("fir_filter", taps=8), clustered_vliw(2)
        )
        result = compiled.result
        assert result.stage_count >= 3
        n = 2
        program = build_program(result, compiled.allocation, ramp_iterations=n)
        # Reconstruct the pre-fix prologue span.
        bindings = {b.op_id: b for row in program.kernel for b in row}
        buggy = dataclasses.replace(
            program,
            prologue=_ramp_cycles(
                result,
                bindings,
                range((result.stage_count - 1) * result.ii),
                0,
                n,
            ),
        )
        report = execute_program(
            buggy,
            result.ddg,
            result.latencies,
            n,
            allocation=compiled.allocation,
            machine=result.machine,
        )
        assert not report.ok
        assert any("issued 2 times" in p for p in report.problems)
        # The fixed listings are exact.
        fixed = execute_program(
            program,
            result.ddg,
            result.latencies,
            n,
            allocation=compiled.allocation,
            machine=result.machine,
        )
        assert fixed.ok, fixed.problems

    def test_omitted_issue_is_caught(self):
        compiled = compile_loop_on(build_stream_loop(), clustered_vliw(2))
        result = compiled.result
        program = build_program(result, compiled.allocation, ramp_iterations=4)
        victim = program.prologue[0]
        program.prologue[0] = CycleIssue(victim.cycle, victim.bindings[1:])
        report = execute_program(
            program, result.ddg, result.latencies, 4,
            allocation=compiled.allocation, machine=result.machine,
        )
        assert not report.ok
        assert any("never issued" in p for p in report.problems)


class TestDifferential:
    @pytest.mark.parametrize(
        "kernel", ["fir_filter", "stencil5", "iir_biquad", "complex_fir"]
    )
    def test_kernels_bit_equal(self, kernel):
        report = verify_loop(make_kernel(kernel), clustered_vliw(4))
        assert report.ok, report.all_problems
        assert report.matched_stores >= 1

    def test_unrolled_program_maps_back_to_base_iterations(self):
        loop = build_stream_loop()
        compiled = compile_loop_on(loop, clustered_vliw(4), unroll=3)
        assert compiled.unroll_factor == 3
        report = verify_compiled(compiled)
        assert report.ok, report.all_problems
        # One base store -> three unrolled replicas, all compared.
        assert report.matched_stores == 3

    def test_fanout_loop_after_single_use(self):
        report = verify_loop(build_fanout_loop(consumers=5), clustered_vliw(4))
        assert report.ok, report.all_problems

    def test_recurrence_loop(self):
        report = verify_loop(build_reduction_loop(), clustered_vliw(2))
        assert report.ok, report.all_problems

    def test_short_ramp_run(self):
        """Runs shorter than the pipeline depth (trip count < SC)."""
        loop = make_kernel("fir_filter", taps=8)
        compiled = compile_loop_on(loop, clustered_vliw(2))
        assert compiled.result.stage_count >= 3
        report = verify_compiled(compiled, iterations=2)
        assert report.ok, report.all_problems

    def test_unclustered_ims_program(self):
        report = verify_loop(make_kernel("daxpy"), unclustered_vliw(3))
        assert report.ok, report.all_problems

    def test_value_corruption_is_caught(self):
        """A schedule whose store reads the wrong producer executes with
        perfect queue discipline — only the differential value compare
        can see it, and it must."""
        from repro.ir import OpCode
        from repro.ir.operations import use

        loop = build_stream_loop()
        compiled = compile_loop_on(loop, clustered_vliw(2))
        result = compiled.result
        ddg = result.ddg.copy()
        store = next(
            op for op in ddg.operations() if op.opcode == OpCode.STORE
        )
        load = next(op for op in ddg.operations() if op.opcode == OpCode.LOAD)
        assert store.srcs[0].producer != load.op_id
        ddg.replace_operand(store.op_id, 0, use(load.op_id))
        mutant = dataclasses.replace(result, ddg=ddg)
        report = verify_compiled(
            dataclasses.replace(compiled, result=mutant, allocation=None)
        )
        assert not report.ok
        assert any("diverges" in p for p in report.all_problems)

    def test_store_shift_by_ii_is_value_preserving(self):
        """Counterpoint: delaying a store by a full II keeps every FIFO
        pop aligned — the oracle must accept it (no false alarms)."""
        loop = build_stream_loop()
        compiled = compile_loop_on(loop, clustered_vliw(2))
        result = compiled.result
        store_id = max(
            op_id
            for op_id in result.placements
            if result.ddg.op(op_id).opcode.value == "store"
        )
        placements = dict(result.placements)
        old = placements[store_id]
        placements[store_id] = Placement(
            time=old.time + result.ii, cluster=old.cluster
        )
        mutant = dataclasses.replace(result, placements=placements)
        report = verify_compiled(
            dataclasses.replace(compiled, result=mutant, allocation=None)
        )
        assert report.ok, report.all_problems

    def test_dependence_violation_pops_empty_queue(self):
        """On an unclustered machine (no allocation layer to catch it
        first) a dependence-violating mutant must fail in the value
        execution itself."""
        compiled = compile_loop_on(build_stream_loop(), unclustered_vliw(2))
        result = compiled.result
        # Pull the first consumer of a load to cycle 0.
        victim = next(
            op.op_id
            for op in result.ddg.operations()
            if any(
                not s.is_external
                and result.ddg.op(s.producer).opcode.value == "load"
                for s in op.srcs
            )
        )
        placements = dict(result.placements)
        placements[victim] = Placement(
            time=0, cluster=placements[victim].cluster
        )
        mutant = dataclasses.replace(result, placements=placements)
        report = verify_compiled(
            dataclasses.replace(compiled, result=mutant, allocation=None)
        )
        assert not report.ok
        assert any(
            "before it is ready" in p or "never issued" in p or "diverges" in p
            for p in report.all_problems
        )


class TestAcceptanceSweep:
    """The ISSUE's acceptance bar: the full kernel suite across all five
    topology kinds x {2, 4, 8} clusters, every program value-equivalent
    to the sequential reference."""

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_full_suite_on_topology(self, topology):
        failures = []
        for name in sorted(KERNELS):
            loop = make_kernel(name)
            for k in CLUSTER_COUNTS:
                report = verify_loop(loop, clustered_vliw(k, topology=topology))
                if not report.ok:
                    failures.append((name, k, report.all_problems[:2]))
        assert not failures, failures
