"""Tests for loop unrolling."""

import pytest

from repro.errors import TransformError
from repro.ir import DEFAULT_LATENCIES, LoopBuilder
from repro.ir.transforms import unroll_ddg, unroll_loop
from repro.scheduling import rec_mii

from .conftest import build_reduction_loop, build_stream_loop


class TestShape:
    def test_op_count_scales(self):
        loop = build_stream_loop()
        for u in (1, 2, 3, 7):
            assert len(unroll_ddg(loop.ddg, u)) == u * loop.n_ops

    def test_factor_one_is_copy(self):
        loop = build_stream_loop()
        unrolled = unroll_ddg(loop.ddg, 1)
        assert unrolled.op_ids == loop.ddg.op_ids
        unrolled.new_operation  # the copy is a distinct object
        assert unrolled is not loop.ddg

    def test_invalid_factor(self):
        loop = build_stream_loop()
        with pytest.raises(TransformError):
            unroll_ddg(loop.ddg, 0)

    def test_unrolled_graph_validates(self):
        for loop in (build_stream_loop(), build_reduction_loop()):
            for u in (2, 4, 5):
                unroll_ddg(loop.ddg, u).validate()

    def test_opcode_mix_preserved(self):
        loop = build_reduction_loop()
        base = loop.ddg.opcode_histogram()
        unrolled = unroll_ddg(loop.ddg, 3).opcode_histogram()
        for opcode, count in base.items():
            assert unrolled[opcode] == 3 * count


class TestDependenceRewiring:
    def test_intra_copy_deps_become_omega0(self):
        loop = build_stream_loop()
        unrolled = unroll_ddg(loop.ddg, 4)
        # Streams have no loop-carried edges at all after unrolling.
        assert all(e.omega == 0 for e in unrolled.edges())

    def test_recurrence_wraps_around(self):
        loop = build_reduction_loop()
        unrolled = unroll_ddg(loop.ddg, 4)
        carried = [e for e in unrolled.edges() if e.omega > 0]
        # Exactly one wrap-around edge for the accumulator chain.
        assert len(carried) == 1
        assert carried[0].omega == 1

    def test_distance_two_dependence(self):
        b = LoopBuilder("d2")
        x = b.load()
        ph = b.placeholder()
        total = b.add(x, b.carried(ph, 2))
        b.bind(ph, total)
        loop = b.build()
        unrolled = unroll_ddg(loop.ddg, 4)
        carried = [e for e in unrolled.edges() if e.omega > 0]
        # Distance 2 on a 4x body: two wrap edges of omega 1.
        assert len(carried) == 2
        assert all(e.omega == 1 for e in carried)
        assert len([e for e in unrolled.edges() if e.omega == 0]) > 0

    def test_recurrence_chain_links_copies(self):
        loop = build_reduction_loop()
        unrolled = unroll_ddg(loop.ddg, 3)
        sccs = unrolled.sccs()
        assert len(sccs) == 1
        assert len(sccs[0]) == 3  # the accumulator in every copy

    def test_effective_rec_mii_is_preserved(self):
        # RecMII(unrolled) / u == RecMII(base) for a simple reduction.
        loop = build_reduction_loop()
        base = rec_mii(loop.ddg, DEFAULT_LATENCIES)
        for u in (2, 3, 5):
            unrolled = unroll_ddg(loop.ddg, u)
            assert rec_mii(unrolled, DEFAULT_LATENCIES) == u * base

    def test_scaled_rec_mii_matches_real_unroll(self):
        # The analytic `rec_mii(..., unroll=u)` must equal the RecMII of
        # the actually-unrolled graph (used by the unroll chooser).
        for loop in (build_reduction_loop(), build_stream_loop()):
            for u in (1, 2, 4, 6):
                scaled = rec_mii(loop.ddg, DEFAULT_LATENCIES, unroll=u)
                real = rec_mii(unroll_ddg(loop.ddg, u), DEFAULT_LATENCIES)
                assert scaled == real


class TestMemEdges:
    def test_mem_edges_replicated(self):
        b = LoopBuilder("mem")
        x = b.load("a[i]")
        st = b.store(x, "a[i+1]")
        ld = b.load("a[i+1]")
        b.mem_dep(st, ld, omega=1, latency=1)
        loop = b.build()
        unrolled = unroll_ddg(loop.ddg, 3)
        mem = [e for e in unrolled.edges() if not e.is_flow]
        assert len(mem) == 3
        assert sum(e.omega for e in mem) == 1  # one wrap-around


class TestLoopWrapper:
    def test_unroll_loop_updates_metadata(self):
        loop = build_stream_loop(trip_count=100)
        unrolled = unroll_loop(loop, 4)
        assert unrolled.unroll_factor == 4
        assert unrolled.kernel_iterations == 25
        assert unrolled.n_ops == 4 * loop.n_ops

    def test_double_unroll_rejected(self):
        loop = unroll_loop(build_stream_loop(), 2)
        with pytest.raises(TransformError):
            unroll_loop(loop, 2)

    def test_kernel_iterations_round_up(self):
        loop = build_stream_loop(trip_count=10)
        unrolled = unroll_loop(loop, 4)
        assert unrolled.kernel_iterations == 3
