"""Service/local bit-identity across the golden-fingerprint corpus.

The golden suite (``test_perf_fingerprints.py``) pins the raw schedulers;
this suite pins the *service*: every case in the same matrix — the full
kernel suite x {ring, linear, mesh, crossbar} x {2, 4, 8} clusters, plus
the unrolled DMS and IMS reference cases — is compiled both through a
local :class:`~repro.api.Toolchain` and through a live ``repro serve``
daemon (loop serialized over the wire via ``compile_request``), and the
schedule fingerprints must agree exactly.  Cases where the local compile
raises must fail remotely with the same error class.
"""

from concurrent.futures import ThreadPoolExecutor

from repro.api import CompilationRequest, Toolchain
from repro.errors import ReproError, ServiceError
from repro.machine import clustered_vliw, unclustered_vliw
from repro.scheduling.fingerprint import schedule_fingerprint
from repro.workloads import KERNELS, make_kernel

from ._fingerprint_cases import (
    CLUSTER_COUNTS,
    IMS_CASES,
    LADDER_CONFIG,
    TOPOLOGIES,
    UNROLLED_CASES,
)
from .test_service import jsonable, running_service


def corpus_requests():
    """The golden case matrix as (name, CompilationRequest) pairs."""
    cases = []
    for kernel in sorted(KERNELS):
        for topology in TOPOLOGIES:
            for k in CLUSTER_COUNTS:
                cases.append(
                    (
                        f"{kernel}/{topology}-{k}",
                        CompilationRequest(
                            loop=make_kernel(kernel),
                            machine=clustered_vliw(k, topology=topology),
                            config=LADDER_CONFIG,
                        ),
                    )
                )
    for label, kernel, kwargs, unroll, topology, k in UNROLLED_CASES:
        cases.append(
            (
                label,
                CompilationRequest(
                    loop=make_kernel(kernel, **kwargs),
                    machine=clustered_vliw(k, topology=topology),
                    config=LADDER_CONFIG,
                    unroll=unroll,
                ),
            )
        )
    for label, kernel, unroll, k in IMS_CASES:
        cases.append(
            (
                label,
                CompilationRequest(
                    loop=make_kernel(kernel),
                    machine=unclustered_vliw(k),
                    config=LADDER_CONFIG,
                    unroll=unroll if unroll > 1 else None,
                    scheduler="ims",
                ),
            )
        )
    return cases


def local_outcome(toolchain, request):
    try:
        report = toolchain.compile(request)
    except ReproError as err:
        return ("error", type(err).__name__)
    return ("ok", jsonable(schedule_fingerprint(report.result)))


def service_outcome(client, request):
    try:
        result = client.compile_request(request)
    except ServiceError as err:
        if err.status != 422:  # only compile failures are expected
            raise
        # The daemon reports "<ErrorClass>: <message>".
        return ("error", str(err).split(":", 1)[0])
    return ("ok", result["fingerprint"])


def test_service_is_bit_identical_to_local_toolchain_over_corpus():
    cases = corpus_requests()
    toolchain = Toolchain.default()
    local = {name: local_outcome(toolchain, request) for name, request in cases}

    with running_service(lru_capacity=len(cases)) as (service, client, _loop):
        with ThreadPoolExecutor(max_workers=4) as pool:
            remote_results = pool.map(
                lambda case: (case[0], service_outcome(client, case[1])), cases
            )
            remote = dict(remote_results)
        metrics = client.metrics()

    mismatches = [
        f"{name}: local={local[name][0]}:{str(local[name][1])[:60]} "
        f"service={remote[name][0]}:{str(remote[name][1])[:60]}"
        for name, _ in cases
        if local[name] != remote[name]
    ]
    assert not mismatches, (
        f"{len(mismatches)}/{len(cases)} corpus cases diverge between the "
        "service and the local toolchain:\n" + "\n".join(mismatches[:20])
    )
    # Every case really went through the daemon (distinct keys: no dedup).
    assert metrics["requests"]["total"] == len(cases)
    compiles = metrics["compiles"]
    assert compiles["started"] == len(cases)
    assert compiles["completed"] + compiles["failed"] == len(cases)
    succeeded = sum(1 for outcome in local.values() if outcome[0] == "ok")
    assert compiles["completed"] == succeeded
