"""Tests for DMS backtracking: ejections, chain dismantling, strategy 3."""

import pytest

from repro.config import SchedulerConfig
from repro.ir import DEFAULT_LATENCIES, LoopBuilder
from repro.ir.transforms import single_use_ddg
from repro.machine import ClusterSpec, clustered_vliw
from repro.scheduling import DistributedModuloScheduler, validate_schedule
from repro.workloads import make_kernel


def spread_loop(pairs=5, name="spread"):
    """Loads combined across the ring: forces long-range communication."""
    b = LoopBuilder(name)
    loads = [b.load(f"x{j}") for j in range(2 * pairs)]
    for j in range(pairs):
        b.store(b.add(loads[j], loads[j + pairs]), f"y{j}")
    return b.build(64)


class TestStrategy3:
    def test_no_copy_units_forces_comm_ejections(self):
        # Without Copy FUs chains are impossible; strategy 3 must still
        # deliver a valid schedule by ejecting communication conflicts.
        machine = clustered_vliw(6, cluster=ClusterSpec(copy=0))
        scheduler = DistributedModuloScheduler(machine)
        loop = spread_loop(pairs=4)
        result = scheduler.schedule(loop.ddg.copy())
        validate_schedule(result)
        assert result.n_moves == 0

    def test_comm_ejections_counted(self):
        machine = clustered_vliw(8, cluster=ClusterSpec(copy=0))
        scheduler = DistributedModuloScheduler(machine)
        loop = spread_loop(pairs=6)
        result = scheduler.schedule(loop.ddg.copy())
        validate_schedule(result)
        # Either the packing avoided conflicts entirely or strategy 3 ran.
        if result.stats.strategy3:
            assert result.stats.ejections_communication >= 0


class TestTightBudgets:
    @pytest.mark.parametrize("budget_ratio", [1, 2, 6])
    def test_small_budgets_still_terminate(self, budget_ratio):
        config = SchedulerConfig(budget_ratio=budget_ratio)
        scheduler = DistributedModuloScheduler(
            clustered_vliw(4), DEFAULT_LATENCIES, config
        )
        loop = spread_loop(pairs=4)
        result = scheduler.schedule(loop.ddg.copy())
        validate_schedule(result)

    def test_single_restart_mode(self):
        # restarts_per_ii=1 is the strict single-pass algorithm.
        config = SchedulerConfig(restarts_per_ii=1)
        scheduler = DistributedModuloScheduler(
            clustered_vliw(6), DEFAULT_LATENCIES, config
        )
        loop = spread_loop(pairs=5)
        result = scheduler.schedule(loop.ddg.copy())
        validate_schedule(result)

    def test_restarts_never_hurt_ii(self):
        loop = spread_loop(pairs=5)
        one = DistributedModuloScheduler(
            clustered_vliw(8), DEFAULT_LATENCIES, SchedulerConfig(restarts_per_ii=1)
        ).schedule(loop.ddg.copy())
        many = DistributedModuloScheduler(
            clustered_vliw(8), DEFAULT_LATENCIES, SchedulerConfig(restarts_per_ii=4)
        ).schedule(loop.ddg.copy())
        assert many.ii <= one.ii


class TestChainDismantling:
    def test_recurrent_kernel_with_chains_survives_backtracking(self):
        # LMS has recurrences, high fan-out and long chains: scheduling it
        # on a wide ring exercises every ejection path.  The checker
        # guarantees no stale moves or dangling operands survive.
        loop = make_kernel("lms_update", taps=5)
        ddg = single_use_ddg(loop.ddg)
        for clusters in (6, 8, 10):
            scheduler = DistributedModuloScheduler(clustered_vliw(clusters))
            result = scheduler.schedule(ddg.copy())
            validate_schedule(result)
            stats = result.stats
            assert stats.moves_removed <= stats.moves_inserted
            assert stats.chains_dismantled <= stats.chains_built
            # Failed attempts discard their moves with the graph copy, so
            # the survivors are bounded by the insert/remove ledger.
            assert result.n_moves <= stats.moves_inserted - stats.moves_removed

    def test_fir_wide_ring(self):
        loop = make_kernel("fir_filter", taps=10)
        ddg = single_use_ddg(loop.ddg)
        scheduler = DistributedModuloScheduler(clustered_vliw(9))
        result = scheduler.schedule(ddg.copy())
        validate_schedule(result)

    def test_moves_removed_from_graph_on_dismantle(self):
        # After scheduling, every MOVE in the DDG must be placed; no
        # orphans from dismantled chains may remain.
        loop = make_kernel("lms_update", taps=4)
        ddg = single_use_ddg(loop.ddg)
        result = DistributedModuloScheduler(clustered_vliw(8)).schedule(
            ddg.copy()
        )
        from repro.ir import OpCode

        for op in result.ddg.operations():
            if op.opcode == OpCode.MOVE:
                assert op.op_id in result.placements


class TestIIOverflow:
    def test_overflow_reported(self):
        from repro.errors import IIOverflowError

        # An impossible machine: one cluster pair, no copy FUs, and a
        # graph that needs cross-ring communication at II=1 cannot always
        # fail — so instead force overflow with a tiny max II and a
        # saturated machine.
        config = SchedulerConfig(
            max_ii_factor=1, max_ii_extra=0, budget_ratio=1, restarts_per_ii=1
        )
        scheduler = DistributedModuloScheduler(
            clustered_vliw(2), DEFAULT_LATENCIES, config
        )
        loop = spread_loop(pairs=6)
        try:
            result = scheduler.schedule(loop.ddg.copy())
            validate_schedule(result)  # lucky: MII worked first try
        except IIOverflowError as err:
            assert err.max_ii >= 1
