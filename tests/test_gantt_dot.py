"""Tests for the Gantt renderer and DOT export."""

import pytest

from repro.codegen import kernel_gantt, utilization_summary
from repro.ir import ddg_to_dot
from repro.ir.transforms import single_use_ddg
from repro.machine import clustered_vliw, unclustered_vliw
from repro.scheduling import (
    DistributedModuloScheduler,
    IterativeModuloScheduler,
)
from repro.workloads import make_kernel

from .conftest import build_reduction_loop, build_stream_loop


@pytest.fixture(scope="module")
def dms_result():
    loop = make_kernel("fir_filter", taps=6)
    return DistributedModuloScheduler(clustered_vliw(4)).schedule(
        single_use_ddg(loop.ddg)
    )


class TestGantt:
    def test_all_ops_present(self, dms_result):
        chart = kernel_gantt(dms_result)
        for op_id in dms_result.ddg.op_ids:
            assert f"v{op_id}" in chart

    def test_one_line_per_fu(self, dms_result):
        chart = kernel_gantt(dms_result)
        machine = dms_result.machine
        fu_lines = [
            line for line in chart.splitlines() if line.startswith("c")
        ]
        expected = sum(
            machine.cluster(c).total_fus for c in range(machine.n_clusters)
        )
        assert len(fu_lines) == expected

    def test_header_shows_ii(self, dms_result):
        chart = kernel_gantt(dms_result)
        assert f"II={dms_result.ii}" in chart

    def test_utilization_summary(self, dms_result):
        text = utilization_summary(dms_result)
        assert "mem" in text and "%" in text

    def test_unclustered_gantt(self):
        result = IterativeModuloScheduler(unclustered_vliw(2)).schedule(
            build_stream_loop().ddg.copy()
        )
        chart = kernel_gantt(result)
        assert "c0.mem0" in chart
        assert "c0.mem1" in chart


class TestDot:
    def test_nodes_and_edges_rendered(self):
        loop = build_reduction_loop()
        dot = ddg_to_dot(loop.ddg)
        assert dot.startswith("digraph")
        for op_id in loop.ddg.op_ids:
            assert f"v{op_id} [" in dot
        assert "->" in dot
        assert dot.rstrip().endswith("}")

    def test_loop_carried_edge_labelled(self):
        loop = build_reduction_loop()
        dot = ddg_to_dot(loop.ddg)
        assert 'label="1"' in dot

    def test_mem_edges_dashed(self):
        from repro.ir import LoopBuilder

        b = LoopBuilder("mem")
        x = b.load("a")
        st = b.store(x, "b")
        ld = b.load("b")
        b.store(ld, "c")
        b.mem_dep(st, ld, latency=1)
        dot = ddg_to_dot(b.build().ddg)
        assert "style=dashed" in dot

    def test_cluster_grouping(self, dms_result):
        clusters = {
            op_id: p.cluster for op_id, p in dms_result.placements.items()
        }
        dot = ddg_to_dot(dms_result.ddg, clusters)
        assert "subgraph cluster_0" in dot
        assert "subgraph cluster_3" in dot

    def test_quotes_escaped(self):
        from repro.ir import LoopBuilder

        b = LoopBuilder('with"quote')
        b.load('x"y')
        dot = ddg_to_dot(b.build().ddg)
        assert r"\"" in dot
