"""Test package marker.

Several modules import shared DDG factories with ``from .conftest import
...``; making ``tests`` a package gives those relative imports a parent
so plain ``python -m pytest`` collects cleanly.
"""
