"""Tests for opcode classification and the latency model."""

import pytest

from repro.ir.opcodes import (
    DEFAULT_LATENCIES,
    FUKind,
    LatencyModel,
    OpCode,
    USEFUL_FU_KINDS,
    fu_kind_of,
    is_useful,
    produces_value,
)


class TestFUClassification:
    def test_memory_ops_use_mem_unit(self):
        assert fu_kind_of(OpCode.LOAD) == FUKind.MEM
        assert fu_kind_of(OpCode.STORE) == FUKind.MEM

    def test_arithmetic_ops_use_alu(self):
        for opcode in (OpCode.ADD, OpCode.SUB, OpCode.CMP, OpCode.MIN, OpCode.MAX):
            assert fu_kind_of(opcode) == FUKind.ALU

    def test_multiplier_ops(self):
        for opcode in (OpCode.MUL, OpCode.DIV, OpCode.SQRT):
            assert fu_kind_of(opcode) == FUKind.MUL

    def test_copy_ops_use_copy_unit(self):
        assert fu_kind_of(OpCode.COPY) == FUKind.COPY
        assert fu_kind_of(OpCode.MOVE) == FUKind.COPY

    def test_every_opcode_is_classified(self):
        for opcode in OpCode:
            assert fu_kind_of(opcode) in FUKind

    def test_useful_fu_kinds_exclude_copy(self):
        assert FUKind.COPY not in USEFUL_FU_KINDS
        assert len(USEFUL_FU_KINDS) == 3


class TestUsefulness:
    def test_copy_and_move_are_not_useful(self):
        # The paper excludes copy/move work from performance figures.
        assert not is_useful(OpCode.COPY)
        assert not is_useful(OpCode.MOVE)

    def test_computation_is_useful(self):
        assert is_useful(OpCode.LOAD)
        assert is_useful(OpCode.ADD)
        assert is_useful(OpCode.MUL)

    def test_store_produces_no_value(self):
        assert not produces_value(OpCode.STORE)
        assert produces_value(OpCode.LOAD)
        assert produces_value(OpCode.COPY)


class TestLatencyModel:
    def test_default_latencies_are_positive(self):
        for opcode in OpCode:
            assert DEFAULT_LATENCIES.latency(opcode) >= 1

    def test_defaults_match_documented_profile(self):
        assert DEFAULT_LATENCIES[OpCode.LOAD] == 2
        assert DEFAULT_LATENCIES[OpCode.ADD] == 1
        assert DEFAULT_LATENCIES[OpCode.MUL] == 3
        assert DEFAULT_LATENCIES[OpCode.DIV] == 8

    def test_custom_profile(self):
        model = LatencyModel(load=4, mul=5)
        assert model[OpCode.LOAD] == 4
        assert model[OpCode.MUL] == 5
        assert model[OpCode.ADD] == 1  # unchanged default

    def test_alu_ops_share_alu_latency(self):
        model = LatencyModel(alu=2)
        for opcode in (OpCode.ADD, OpCode.SUB, OpCode.SELECT, OpCode.ABS):
            assert model[opcode] == 2

    def test_invalid_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(load=0)
        with pytest.raises(ValueError):
            LatencyModel(mul=-1)
