"""Engine-level lint tests: suppressions, baseline diffing, registry,
config loading, reporters."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    BAD_SUPPRESSION,
    PARSE_ERROR,
    Baseline,
    Finding,
    LintConfig,
    LintResult,
    lint_file,
    load_config,
    register_rule,
    render_json,
    render_text,
    run_lint,
)
from repro.analysis.rules import LintRule, get_rule, registered_rules
from repro.analysis.suppress import scan_suppressions
from repro.errors import LintError, ReproError

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).parents[1]


def _finding(rule="determinism", path="mod.py", line=3, snippet="x = time.time()"):
    return Finding(
        rule=rule, path=path, line=line, col=5,
        message="msg", snippet=snippet,
    )


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------


class TestSuppressions:
    def run_fixture(self):
        config = LintConfig(
            root=FIXTURES, paths=(".",),
            determinism_paths=("fix_suppress.py",),
        )
        rules = [get_rule(rule_id) for rule_id in registered_rules()]
        return lint_file(
            FIXTURES / "fix_suppress.py", "fix_suppress.py", rules, config
        )

    def test_inline_and_standalone_suppressions_silence_findings(self):
        findings, suppressed = self.run_fixture()
        silenced_lines = {
            10,  # inline_ok: trailing comment on the offending line
            15,  # standalone_ok: comment on the line above
        }
        assert suppressed == 2
        assert not [f for f in findings if f.line in silenced_lines]

    def test_malformed_suppressions_never_silence(self):
        findings, _ = self.run_fixture()
        by_rule = {}
        for finding in findings:
            by_rule.setdefault(finding.rule, []).append(finding.line)
        # unknown_rule / missing_why / empty_ids all keep their
        # determinism finding AND gain a bad-suppression finding.
        assert sorted(by_rule["determinism"]) == [19, 23, 27]
        assert sorted(by_rule[BAD_SUPPRESSION]) == [19, 23, 27]

    def test_bad_suppression_messages_name_the_problem(self):
        findings, _ = self.run_fixture()
        messages = sorted(
            f.message for f in findings if f.rule == BAD_SUPPRESSION
        )
        assert any("not-a-rule" in m for m in messages)
        assert any("justification" in m for m in messages)
        assert any("names no rule id" in m for m in messages)

    def test_scan_requires_exact_marker(self):
        table = scan_suppressions(
            "mod.py",
            "x = 1  # lint-ignore[determinism]: missing the repro: prefix\n",
            ("determinism",),
        )
        assert not table.by_line and not table.problems

    def test_marker_inside_string_is_not_a_suppression(self):
        source = 'text = "# repro: lint-ignore[determinism]: nope"\n'
        table = scan_suppressions("mod.py", source, ("determinism",))
        assert not table.by_line and not table.problems


# ----------------------------------------------------------------------
# Baseline add/remove diffing
# ----------------------------------------------------------------------


class TestBaseline:
    def test_roundtrip(self, tmp_path):
        findings = [_finding(), _finding(rule="pool-safety", line=9)]
        path = tmp_path / "base.json"
        Baseline.from_findings(findings).save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 2
        diff = loaded.diff(findings)
        assert not diff.new and not diff.resolved
        assert len(diff.baselined) == 2

    def test_line_shift_still_matches(self):
        baseline = Baseline.from_findings([_finding(line=3)])
        diff = baseline.diff([_finding(line=40)])  # same snippet, moved
        assert not diff.new and not diff.resolved

    def test_new_finding_is_new(self):
        baseline = Baseline.from_findings([_finding()])
        diff = baseline.diff([_finding(), _finding(snippet="y = hash(k)")])
        assert len(diff.new) == 1
        assert diff.new[0].snippet == "y = hash(k)"

    def test_fixed_finding_is_resolved(self):
        baseline = Baseline.from_findings([_finding(), _finding(line=9)])
        diff = baseline.diff([_finding()])
        # Two identical-key findings grandfathered, one remains: the
        # count shrinks and the surplus is reported as resolved.
        assert not diff.new
        assert len(diff.baselined) == 1
        assert len(diff.resolved) == 1
        assert diff.resolved[0]["unmatched"] == 1

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0

    def test_corrupt_file_raises_lint_error(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text("{\"schema\": 99}")
        with pytest.raises(LintError):
            Baseline.load(path)
        path.write_text("not json")
        with pytest.raises(LintError):
            Baseline.load(path)


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_double_registration_is_an_error(self):
        class Clone(LintRule):
            rule_id = "determinism"
            description = "impostor"

        with pytest.raises(LintError):
            register_rule(Clone())

    def test_replace_allows_override_and_restores(self):
        original = get_rule("determinism")

        class Clone(LintRule):
            rule_id = "determinism"
            description = "impostor"

        try:
            register_rule(Clone(), replace=True)
            assert get_rule("determinism").description == "impostor"
        finally:
            register_rule(original, replace=True)
        assert get_rule("determinism") is original

    def test_reserved_and_anonymous_ids_rejected(self):
        class Meta(LintRule):
            rule_id = BAD_SUPPRESSION

        class Nameless(LintRule):
            rule_id = ""

        with pytest.raises(LintError):
            register_rule(Meta())
        with pytest.raises(LintError):
            register_rule(Nameless())

    def test_unknown_rule_lookup_raises(self):
        with pytest.raises(LintError) as err:
            get_rule("no-such-rule")
        assert "determinism" in str(err.value)  # names the known rules

    def test_lint_error_is_a_repro_error(self):
        assert issubclass(LintError, ReproError)


# ----------------------------------------------------------------------
# Config
# ----------------------------------------------------------------------


class TestConfig:
    def test_repo_pyproject_round_trips(self):
        config = load_config(REPO_ROOT)
        assert config.paths == ("src", "benchmarks")
        assert config.baseline == "LINT_baseline.json"
        assert "src/repro/scheduling" in config.determinism_paths
        assert {g.file for g in config.cache_guards} == {
            "src/repro/ir/ddg.py", "src/repro/scheduling/mrt.py",
        }
        ddg = config.guards_for("src/repro/ir/ddg.py")
        assert len(ddg) == 1 and "_touch_endpoints" in ddg[0].invalidators

    def test_unknown_key_raises(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.lint]\ntypo-key = true\n"
        )
        with pytest.raises(LintError) as err:
            load_config(tmp_path)
        assert "typo-key" in str(err.value)

    def test_missing_pyproject_uses_defaults(self, tmp_path):
        config = load_config(tmp_path)
        assert config.paths == ("src", "benchmarks")

    def test_guard_entry_missing_key_raises(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[[tool.repro.lint.cache-guards]]\nfile = \"x.py\"\n"
        )
        with pytest.raises(LintError):
            load_config(tmp_path)


# ----------------------------------------------------------------------
# Runner + reporters
# ----------------------------------------------------------------------


class TestRunner:
    def make_tree(self, tmp_path):
        pkg = tmp_path / "src"
        pkg.mkdir()
        (pkg / "clean.py").write_text("VALUE = 1\n")
        (pkg / "dirty.py").write_text(
            "import time\n\n\ndef stamp():\n    return time.time()\n"
        )
        (pkg / "broken.py").write_text("def oops(:\n")
        return LintConfig(
            root=tmp_path, paths=("src",),
            determinism_paths=("src",), api_paths=(), cache_guards=(),
        )

    def test_run_lint_finds_parse_errors_and_findings(self, tmp_path):
        result = run_lint(self.make_tree(tmp_path))
        rules = sorted(f.rule for f in result.findings)
        assert rules == sorted([PARSE_ERROR, "determinism"])
        assert result.files_checked == 3
        assert not result.ok

    def test_exclude_drops_files(self, tmp_path):
        config = self.make_tree(tmp_path)
        config.exclude = ("src/broken.py", "src/dirty.py")
        result = run_lint(config)
        assert result.files_checked == 1 and result.ok

    def test_baseline_consumes_findings(self, tmp_path):
        config = self.make_tree(tmp_path)
        config.exclude = ("src/broken.py",)
        first = run_lint(config)
        Baseline.from_findings(first.findings).save(config.baseline_path())
        second = run_lint(config)
        assert second.ok and len(second.baselined) == 1

    def test_json_report_shape(self, tmp_path):
        config = self.make_tree(tmp_path)
        result = run_lint(config)
        payload = json.loads(render_json(result))
        assert payload["ok"] is False
        assert payload["counts"]["new"] == 2
        assert {f["rule"] for f in payload["new"]} == {
            PARSE_ERROR, "determinism",
        }
        for entry in payload["new"]:
            assert {"rule", "path", "line", "col", "message", "key"} <= set(entry)

    def test_text_report_mentions_summary(self):
        text = render_text(LintResult(files_checked=5, rules_run=["a", "b"]))
        assert "checked 5 files" in text and "0 new" in text

    def test_run_lint_is_deterministic(self, tmp_path):
        config = self.make_tree(tmp_path)
        first = render_json(run_lint(config))
        second = render_json(run_lint(config))
        assert first == second
