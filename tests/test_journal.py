"""Unit tests for the persistent job journal.

Covers the crash shapes replay must absorb: torn final lines (a crash
mid-append), checksum-failing records (bit rot / interleaved garbage),
and repeated compaction (idempotence, byte-for-byte).
"""

import json

import pytest

from repro import faults
from repro.errors import JournalError
from repro.service.journal import (
    EVENT_RANK,
    JobJournal,
    JournalEntry,
    _checksum,
)

PAYLOAD = {"kernel": "daxpy", "clusters": 2, "wait": False}


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.disarm()
    yield
    faults.disarm()


def make_journal(tmp_path, name="jobs.jsonl"):
    # fsync off in unit tests: the durability syscall is not what is
    # under test, and it dominates runtime on CI disks.
    return JobJournal(tmp_path / name, fsync=False)


# ----------------------------------------------------------------------
# Append / replay roundtrip
# ----------------------------------------------------------------------


def test_roundtrip_keeps_furthest_state_per_key(tmp_path):
    with make_journal(tmp_path) as journal:
        journal.append("submitted", "k1", wait=False, payload=PAYLOAD)
        journal.append("submitted", "k2", wait=True)
        journal.append("started", "k1", job=1)
        journal.append("done", "k2", job=2)
        entries, stats = journal.replay()
    assert stats.records == 4
    assert stats.corrupt_lines == 0 and stats.torn_tail is False
    assert stats.live == 1 and stats.terminal == 1
    assert entries["k1"].event == "started" and not entries["k1"].terminal
    assert entries["k1"].payload == PAYLOAD
    assert entries["k1"].wait is False
    assert entries["k2"].event == "done" and entries["k2"].terminal


def test_rank_monotonic_absorb_never_regresses():
    entry = JournalEntry(key="k")
    entry.absorb({"event": "done", "key": "k"})
    # A late-arriving lower-rank record must not un-finish the job.
    entry.absorb({"event": "started", "key": "k"})
    assert entry.event == "done"
    entry.absorb({"event": "retrying", "key": "k", "crashes": 1})
    assert entry.event == "done"
    assert entry.crashes == 1  # crash budget still accumulates


def test_unknown_event_is_rejected(tmp_path):
    with make_journal(tmp_path) as journal:
        with pytest.raises(JournalError):
            journal.append("exploded", "k1")


# ----------------------------------------------------------------------
# Torn writes and corruption
# ----------------------------------------------------------------------


def test_torn_tail_is_detected_and_repaired(tmp_path):
    journal = make_journal(tmp_path)
    journal.append("submitted", "k1", wait=False, payload=PAYLOAD)
    record = journal.append("submitted", "k2", wait=False)
    journal.close()
    # Simulate a crash mid-append: half a line, no newline.
    line = (json.dumps(record, sort_keys=True) + "\n").encode()
    with open(journal.path, "ab") as handle:
        handle.write(line[: len(line) // 2])

    reopened = make_journal(tmp_path)
    entries, stats = reopened.replay()
    assert stats.torn_tail is True
    assert set(entries) == {"k1", "k2"}  # the torn line is simply absent

    # repair=True truncates the torn bytes so appends continue cleanly.
    before = reopened.path.read_bytes()
    entries, stats = reopened.replay(repair=True)
    after = reopened.path.read_bytes()
    assert len(after) < len(before)
    assert after.endswith(b"\n")
    reopened.append("done", "k1")
    entries, stats = reopened.replay()
    assert stats.torn_tail is False
    assert entries["k1"].terminal
    reopened.close()


def test_checksum_rejects_corrupt_lines_but_keeps_the_rest(tmp_path):
    journal = make_journal(tmp_path)
    journal.append("submitted", "k1", wait=False, payload=PAYLOAD)
    journal.append("submitted", "k2", wait=False)
    journal.close()
    raw = journal.path.read_bytes().splitlines(keepends=True)
    # Flip payload bytes of the first record without touching its "sum".
    garbled = raw[0].replace(b"daxpy", b"dxapy")
    journal.path.write_bytes(garbled + raw[1] + b'{"not": "a record"}\n')

    reopened = make_journal(tmp_path)
    entries, stats = reopened.replay()
    reopened.close()
    assert stats.corrupt_lines == 2  # garbled checksum + schemaless line
    assert stats.records == 1
    assert set(entries) == {"k2"}


def test_checksum_is_over_canonical_record():
    record = {"v": 1, "seq": 3, "event": "done", "key": "abc"}
    digest = _checksum(record)
    assert _checksum({**record, "sum": digest}) == digest  # sum excluded
    assert _checksum({**record, "seq": 4}) != digest


def test_torn_write_fault_point_truncates_the_line(tmp_path):
    faults.install(faults.FaultPlan.from_spec("journal-torn-write:times=2"))
    journal = make_journal(tmp_path)
    journal.append("submitted", "k1", wait=False, payload=PAYLOAD)
    journal.append("submitted", "k2", wait=False, payload=PAYLOAD)  # torn
    assert journal.torn_writes == 1
    raw = journal.path.read_bytes()
    assert not raw.endswith(b"\n")

    entries, stats = journal.replay(repair=True)
    assert stats.torn_tail is True
    assert set(entries) == {"k1"}
    # The journal heals: the torn bytes are gone and appends land again.
    journal.append("submitted", "k3", wait=False)
    entries, stats = journal.replay()
    assert set(entries) == {"k1", "k3"} and stats.torn_tail is False
    journal.close()


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------


def test_compaction_drops_terminal_keeps_live_and_is_idempotent(tmp_path):
    journal = make_journal(tmp_path)
    journal.append("submitted", "live-a", wait=False, payload=PAYLOAD,
                   priority="low")
    journal.append("submitted", "dead-b", wait=False)
    journal.append("started", "live-a", job=1)
    journal.append("retrying", "live-a", job=1, crashes=1)
    journal.append("done", "dead-b", job=2)
    kept, dropped = journal.compact()
    assert (kept, dropped) == (1, 1)

    entries, stats = journal.replay()
    assert set(entries) == {"live-a"}
    assert stats.records == 1
    entry = entries["live-a"]
    # Everything needed to replay the job survived compaction.
    assert entry.payload == PAYLOAD
    assert entry.priority == "low"
    assert entry.crashes == 1
    assert entry.wait is False

    # Idempotent: compacting a compacted journal is a byte-level no-op.
    first = journal.path.read_bytes()
    assert journal.compact() == (1, 0)
    assert journal.path.read_bytes() == first

    # The journal stays appendable after the handle swap, with seq
    # numbering continuing past the compacted records.
    journal.append("done", "live-a", job=1)
    entries, _ = journal.replay()
    assert entries["live-a"].terminal
    assert journal.compact() == (0, 1)
    assert journal.path.read_bytes() == b""
    assert journal.compactions == 3
    journal.close()


def test_compaction_repairs_a_torn_tail_first(tmp_path):
    journal = make_journal(tmp_path)
    record = journal.append("submitted", "k1", wait=False, payload=PAYLOAD)
    journal.close()
    line = (json.dumps(record, sort_keys=True) + "\n").encode()
    with open(journal.path, "ab") as handle:
        handle.write(line[: len(line) - 3])

    reopened = make_journal(tmp_path)
    assert reopened.compact() == (1, 0)
    raw = reopened.path.read_bytes()
    assert raw.endswith(b"\n") and raw.count(b"\n") == 1
    reopened.close()


# ----------------------------------------------------------------------
# Sweep records (PR 10): interleaving, torn tails, compaction
# ----------------------------------------------------------------------

SWEEP_SPEC = {"jobs": [PAYLOAD, dict(PAYLOAD, clusters=4)], "lease": 5.0}


def test_sweep_records_interleave_with_job_records(tmp_path):
    with make_journal(tmp_path) as journal:
        journal.append("submitted", "job-a", wait=False, payload=PAYLOAD)
        journal.append("sweep-submitted", "sweep:sw-1", payload=SWEEP_SPEC)
        journal.append("started", "job-a", job=1)
        journal.append("sweep-progress", "sweep:sw-1", done={"0": "key0"})
        journal.append("done", "job-a", job=1)
        journal.append(
            "sweep-progress", "sweep:sw-1",
            done={"1": "key1"}, failed={"2": "boom"},
        )
        entries, stats = journal.replay()
    assert stats.records == 6
    sweep = entries["sweep:sw-1"]
    assert sweep.is_sweep and not sweep.terminal
    assert sweep.payload == SWEEP_SPEC
    # Progress accumulates (union), unlike the rank-replacement events.
    assert sweep.sweep_done == {"0": "key0", "1": "key1"}
    assert sweep.sweep_failed == {"2": "boom"}
    job = entries["job-a"]
    assert not job.is_sweep and job.terminal


def test_sweep_terminal_records_close_the_entry(tmp_path):
    with make_journal(tmp_path) as journal:
        journal.append("sweep-submitted", "sweep:sw-1", payload=SWEEP_SPEC)
        journal.append("sweep-progress", "sweep:sw-1", done={"0": "key0"})
        journal.append("sweep-done", "sweep:sw-1")
        # A straggler progress record (duplicate completion after the
        # close) must not re-open the sweep.
        journal.append("sweep-progress", "sweep:sw-1", done={"1": "key1"})
        entries, _ = journal.replay()
    sweep = entries["sweep:sw-1"]
    assert sweep.terminal and sweep.event == "sweep-done"
    assert sweep.sweep_done == {"0": "key0", "1": "key1"}


def test_torn_tail_inside_a_sweep_record(tmp_path):
    journal = make_journal(tmp_path)
    journal.append("sweep-submitted", "sweep:sw-1", payload=SWEEP_SPEC)
    journal.append("sweep-progress", "sweep:sw-1", done={"0": "key0"})
    record = journal.append(
        "sweep-progress", "sweep:sw-1", done={"1": "key1"}
    )
    journal.close()
    # Crash mid-append of the second progress record: tear its line.
    raw = journal.path.read_bytes().splitlines(keepends=True)
    line = (json.dumps(record, sort_keys=True) + "\n").encode()
    assert raw[-1] == line
    journal.path.write_bytes(b"".join(raw[:-1]) + line[: len(line) // 2])

    reopened = make_journal(tmp_path)
    entries, stats = reopened.replay(repair=True)
    reopened.close()
    assert stats.torn_tail is True
    sweep = entries["sweep:sw-1"]
    # The torn progress is simply absent; the intact prefix survives.
    assert sweep.sweep_done == {"0": "key0"}
    assert sweep.payload == SWEEP_SPEC and not sweep.terminal


def test_compaction_keeps_open_sweeps_and_merges_progress(tmp_path):
    journal = make_journal(tmp_path)
    journal.append("submitted", "job-a", wait=False, payload=PAYLOAD)
    journal.append("sweep-submitted", "sweep:open", payload=SWEEP_SPEC)
    journal.append("sweep-progress", "sweep:open", done={"0": "key0"})
    journal.append("sweep-progress", "sweep:open", failed={"1": "boom"})
    journal.append("sweep-submitted", "sweep:closed", payload=SWEEP_SPEC)
    journal.append("sweep-done", "sweep:closed")
    journal.append("done", "job-a", job=1)
    kept, dropped = journal.compact()
    assert (kept, dropped) == (1, 2)  # open sweep kept; job + closed sweep gone

    entries, stats = journal.replay()
    assert set(entries) == {"sweep:open"}
    # Two records survive: the synthesized sweep-submitted + one merged
    # sweep-progress carrying the union of every progress record.
    assert stats.records == 2
    sweep = entries["sweep:open"]
    assert sweep.payload == SWEEP_SPEC
    assert sweep.sweep_done == {"0": "key0"}
    assert sweep.sweep_failed == {"1": "boom"}

    # Byte-idempotent recompaction, sweeps included.
    first = journal.path.read_bytes()
    assert journal.compact() == (1, 0)
    assert journal.path.read_bytes() == first

    # Appends continue with seq numbering past both synthesized records.
    journal.append("sweep-done", "sweep:open")
    entries, _ = journal.replay()
    assert entries["sweep:open"].terminal
    assert journal.compact() == (0, 1)
    assert journal.path.read_bytes() == b""
    journal.close()


def test_event_rank_table_is_complete():
    # Every event the daemon can journal has a rank, and the terminal
    # set is exactly the rank-2 events.
    assert set(EVENT_RANK) == {
        "submitted", "started", "retrying", "done", "failed", "shed",
        "quarantined",
        "sweep-submitted", "sweep-progress", "sweep-done", "sweep-failed",
    }
