"""Regression tests for the defects the static analyzer flushed out.

Each test pins one bring-up fix:

* the cache's silent ``except Exception`` swallow (now narrowed, with an
  ``errors`` counter surfaced through ``/metrics``);
* the daemon's blanket ``noqa: BLE001`` catch (now re-raises
  ``MemoryError``, and a broken worker pool is respawned when owned or
  surfaced as 503 + drain when injected);
* the event-loop-blocking metrics/port-file writes in ``run_service``;
* the fork-default process pools in batch/search/oracle (now pinned to
  the spawn context via :func:`repro.pools.spawn_pool`).

The *old* defective shapes are kept here as inline sources and asserted
to be true positives of the rules that caught them — so the rules can
never silently stop covering the bugs that motivated them.
"""

import asyncio
import os
import pickle
import signal
import textwrap
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor

import pytest

from repro.analysis import LintConfig
from repro.analysis.rules import get_rule
from repro.analysis.runner import lint_file
from repro.api import CompilationRequest, Toolchain
from repro.api.cache import CompilationCache, TieredCache, content_hash
from repro.errors import ServiceError
from repro.machine.machine import clustered_vliw
from repro.pools import spawn_pool
from repro.workloads import make_kernel

from .test_service import running_service, wait_until

LADDER = {"search": "ladder"}


def _lint_source(tmp_path, source, *, rules, api_paths=()):
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(source))
    config = LintConfig(
        root=tmp_path, paths=(".",),
        determinism_paths=(), api_paths=api_paths, cache_guards=(),
    )
    findings, _ = lint_file(
        path, "snippet.py", [get_rule(r) for r in rules], config
    )
    return findings


# ----------------------------------------------------------------------
# Cache: corrupt entries are counted, not swallowed
# ----------------------------------------------------------------------


class TestCacheErrorCounter:
    def compile_one(self):
        toolchain = Toolchain()
        request = CompilationRequest(
            loop=make_kernel("daxpy"),
            machine=clustered_vliw(2),
            allocate=False,
        )
        return request, toolchain.compile(request)

    def test_corrupt_entry_counts_error_and_recovers(self, tmp_path):
        cache = CompilationCache(tmp_path / "cache")
        request, report = self.compile_one()
        key = content_hash(request)
        cache.put(key, report)
        cache.path_for(key).write_bytes(b"\x80\x05 garbage")

        assert cache.get(key) is None
        assert cache.stats.errors == 1
        assert cache.stats.misses == 1
        assert not cache.path_for(key).exists()  # damaged entry evicted
        assert "1 errors" in cache.stats.summary()

    def test_wrong_type_entry_counts_error(self, tmp_path):
        cache = CompilationCache(tmp_path / "cache")
        path = cache.path_for("ab" * 8)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps({"not": "a report"}))
        assert cache.get("ab" * 8) is None
        assert cache.stats.errors == 1

    def test_tiered_counters_surface_disk_errors(self, tmp_path):
        disk = CompilationCache(tmp_path / "cache")
        tiered = TieredCache(disk=disk)
        request, report = self.compile_one()
        key = content_hash(request)
        disk.put(key, report)
        disk.path_for(key).write_bytes(b"junk")
        assert tiered.get(key) is None
        assert tiered.counters()["disk_errors"] == 1

    def test_old_swallow_shape_is_a_true_positive(self, tmp_path):
        """The pre-fix cache.get shape: broad catch, no counter, no raise."""
        findings = _lint_source(
            tmp_path,
            """
            def get(self, path):
                try:
                    return load(path)
                except Exception:
                    try:
                        path.unlink()
                    except OSError:
                        pass
                    return None
            """,
            rules=["exception-discipline"],
        )
        assert [f.rule for f in findings] == ["exception-discipline"]


# ----------------------------------------------------------------------
# Daemon: the job-isolation catch re-raises what it must
# ----------------------------------------------------------------------


class TestDaemonExceptionBoundary:
    PAYLOAD = {"kernel": "daxpy", "clusters": 2, "config": dict(LADDER)}

    def test_generic_failure_is_a_500(self):
        def exploding_compile(toolchain, request):
            raise RuntimeError("scheduler bug")

        with running_service(compile_fn=exploding_compile) as (
            service, client, _loop,
        ):
            with pytest.raises(ServiceError) as err:
                client.compile(dict(self.PAYLOAD))
            assert err.value.status == 500
            assert service.metrics.compiles_failed == 1
            assert not service._draining  # one bad job doesn't drain

    def test_broken_executor_gives_503_and_drains(self):
        # The original defect: a blanket catch dressed a dead worker
        # pool up as an ordinary compile failure.  Since the supervisor
        # landed, a crash on an *owned* pool is respawned and retried
        # (pinned in test_service_faults); an injected executor is not
        # the daemon's to rebuild, so that path must still surface the
        # break as 503 + drain rather than swallow it.
        def broken_compile(toolchain, request):
            raise BrokenExecutor("worker died")

        injected = ThreadPoolExecutor(max_workers=1)
        try:
            with running_service(
                compile_fn=broken_compile, executor=injected,
            ) as (service, client, _loop):
                with pytest.raises(ServiceError) as err:
                    client.compile(dict(self.PAYLOAD))
                assert err.value.status == 503
                wait_until(lambda: service._draining, what="drain requested")
        finally:
            injected.shutdown(wait=False, cancel_futures=True)

    def test_memory_error_fails_job_with_503_and_propagates(self):
        def oom_compile(toolchain, request):
            raise MemoryError

        with running_service(compile_fn=oom_compile) as (
            service, client, loop,
        ):
            seen = []
            loop.call_soon_threadsafe(
                loop.set_exception_handler,
                lambda _loop, ctx: seen.append(ctx.get("exception")),
            )
            with pytest.raises(ServiceError) as err:
                client.compile(dict(self.PAYLOAD))
            assert err.value.status == 503
            # The MemoryError escapes the job task instead of being
            # dressed up as a compile failure.
            wait_until(
                lambda: any(isinstance(e, MemoryError) for e in seen),
                what="MemoryError reaching the loop handler",
            )

    def test_old_noqa_shape_is_a_true_positive(self, tmp_path):
        """The pre-fix _run_job shape: catch-everything with a noqa tag."""
        findings = _lint_source(
            tmp_path,
            """
            async def _run_job(self, job):
                try:
                    await self.work(job)
                except Exception as err:  # noqa: BLE001 - daemon must not die
                    self._finish_error(job, err, status=500)
            """,
            rules=["exception-discipline"],
        )
        assert [f.rule for f in findings] == ["exception-discipline"]


# ----------------------------------------------------------------------
# Event loop: service file writes are offloaded
# ----------------------------------------------------------------------


class TestRunServiceFileWrites:
    def test_port_file_and_metrics_out_written(self, tmp_path):
        from repro.service import run_service

        port_file = tmp_path / "port.txt"
        metrics_out = tmp_path / "final.json"

        async def drive():
            task = asyncio.ensure_future(
                run_service(
                    port=0, workers=0, port_file=str(port_file),
                    metrics_out=str(metrics_out), quiet=True,
                )
            )
            for _ in range(400):
                if port_file.exists() and port_file.read_text().strip():
                    break
                await asyncio.sleep(0.05)
            else:
                task.cancel()
                raise AssertionError("port file never appeared")
            os.kill(os.getpid(), signal.SIGTERM)
            return await asyncio.wait_for(task, 60)

        snapshot = asyncio.run(drive())
        host, _, port = port_file.read_text().strip().partition(":")
        assert host == "127.0.0.1" and int(port) > 0
        assert metrics_out.exists()
        assert snapshot["draining"] is True

    def test_sync_write_in_async_def_is_a_true_positive(self, tmp_path):
        """The pre-fix run_service shape: Path.write_text on the loop."""
        findings = _lint_source(
            tmp_path,
            """
            async def run_service(port_file, bound):
                Path(port_file).write_text(bound)
            """,
            rules=["async-blocking"],
        )
        assert [f.rule for f in findings] == ["async-blocking"]


# ----------------------------------------------------------------------
# Pools: spawn context everywhere
# ----------------------------------------------------------------------


class TestSpawnPools:
    def test_spawn_pool_pins_spawn_context(self):
        pool = spawn_pool(1)
        try:
            assert type(pool._mp_context).__name__ == "SpawnContext"
        finally:
            pool.shutdown(wait=False)

    def test_fork_default_pool_is_a_true_positive(self, tmp_path):
        """The pre-fix batch/search/oracle shape: default start method."""
        findings = _lint_source(
            tmp_path,
            """
            from concurrent.futures import ProcessPoolExecutor

            def fan_out(jobs, workers):
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    return list(pool.map(str, jobs))
            """,
            rules=["pool-safety"],
        )
        assert [f.rule for f in findings] == ["pool-safety"]
