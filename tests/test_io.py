"""Tests for run persistence (JSONL)."""

import os

import pytest

from repro.errors import ReproError
from repro.experiments import (
    SweepConfig,
    dump_runs,
    figure4,
    load_runs,
    run_sweep,
)
from repro.workloads import perfect_club_surrogate


@pytest.fixture(scope="module")
def runs():
    loops = perfect_club_surrogate(5, seed=8)
    return run_sweep(loops, SweepConfig(cluster_counts=[1, 3]))


class TestRoundtrip:
    def test_dump_load_identity(self, runs, tmp_path):
        path = os.path.join(tmp_path, "runs.jsonl")
        dump_runs(runs, path)
        loaded = load_runs(path)
        assert loaded == runs

    def test_figures_from_loaded_runs(self, runs, tmp_path):
        path = os.path.join(tmp_path, "runs.jsonl")
        dump_runs(runs, path)
        original = figure4(runs)
        recreated = figure4(load_runs(path))
        assert original.series == recreated.series

    def test_blank_lines_ignored(self, runs, tmp_path):
        path = os.path.join(tmp_path, "runs.jsonl")
        dump_runs(runs, path)
        with open(path, "a") as handle:
            handle.write("\n\n")
        assert load_runs(path) == runs


class TestErrors:
    def test_invalid_json_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "bad.jsonl")
        with open(path, "w") as handle:
            handle.write("{not json}\n")
        with pytest.raises(ReproError):
            load_runs(path)

    def test_field_mismatch_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "mismatch.jsonl")
        with open(path, "w") as handle:
            handle.write('{"loop_name": "x"}\n')
        with pytest.raises(ReproError):
            load_runs(path)
