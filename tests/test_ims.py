"""Tests for the IMS baseline scheduler."""

import pytest

from repro.config import SchedulerConfig
from repro.errors import SchedulingError
from repro.ir import DDG, DEFAULT_LATENCIES, LoopBuilder
from repro.machine import unclustered_vliw
from repro.scheduling import IterativeModuloScheduler, validate_schedule

from .conftest import build_reduction_loop, build_stream_loop


def schedule(loop, k=1, config=None):
    scheduler = IterativeModuloScheduler(
        unclustered_vliw(k), DEFAULT_LATENCIES, config or SchedulerConfig()
    )
    return scheduler.schedule(loop.ddg.copy())


class TestBasics:
    def test_stream_achieves_mii(self):
        result = schedule(build_stream_loop(), k=1)
        assert result.ii == result.mii == 3  # 3 mem ops / 1 L/S unit
        validate_schedule(result)

    def test_wide_machine_achieves_ii_one(self):
        result = schedule(build_stream_loop(), k=3)
        assert result.ii == 1
        validate_schedule(result)

    def test_reduction_respects_recurrence(self):
        result = schedule(build_reduction_loop(), k=4)
        assert result.ii >= result.rec_mii
        validate_schedule(result)

    def test_empty_graph_rejected(self):
        scheduler = IterativeModuloScheduler(unclustered_vliw(1))
        with pytest.raises(SchedulingError):
            scheduler.schedule(DDG("empty"))

    def test_result_metadata(self):
        result = schedule(build_stream_loop())
        assert result.scheduler == "ims"
        assert result.loop_name == "stream"
        assert result.stats.placements >= len(result.ddg)
        assert set(result.placements) == set(result.ddg.op_ids)

    def test_deterministic(self):
        a = schedule(build_stream_loop())
        b = schedule(build_stream_loop())
        assert a.placements == b.placements
        assert a.ii == b.ii


class TestSchedulingQuality:
    def test_dependence_chain_is_tight(self):
        # A pure chain ld -> mul -> st should schedule at the latency sum.
        b = LoopBuilder("chain")
        x = b.load()
        y = b.mul(x, "k")
        b.store(y)
        loop = b.build()
        result = schedule(loop, k=1)
        times = {i: p.time for i, p in result.placements.items()}
        assert times[1] == times[0] + 2
        assert times[2] == times[1] + 3

    def test_saturated_mul_unit(self):
        b = LoopBuilder("muls")
        for j in range(5):
            b.store(b.mul(b.load(), "k"))
        loop = b.build()
        result = schedule(loop, k=2)
        # 10 mem ops / 2 units = 5 dominates 5 muls / 2 units = 3.
        assert result.ii == 5
        validate_schedule(result)

    def test_backtracking_loop_schedules(self):
        # Interlocking recurrences force ejections but must still settle.
        b = LoopBuilder("inter")
        s1 = b.placeholder()
        s2 = b.placeholder()
        a = b.add(b.carried(s1, 1), b.carried(s2, 1))
        m = b.mul(a, "k")
        n1 = b.add(m, "c1")
        n2 = b.add(m, "c2")
        b.bind(s1, n1)
        b.bind(s2, n2)
        loop = b.build()
        result = schedule(loop, k=1)
        validate_schedule(result)
        assert result.ii >= result.rec_mii

    def test_budget_exhaustion_raises_ii(self):
        # With an absurdly small budget the first II fails but a later
        # one (with more slack) succeeds.
        tight = SchedulerConfig(budget_ratio=1)
        result = schedule(build_stream_loop(), k=1, config=tight)
        validate_schedule(result)

    def test_ii_attempts_counted(self):
        result = schedule(build_stream_loop(), k=1)
        assert result.stats.ii_attempts >= 1
