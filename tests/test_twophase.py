"""Tests for the two-phase partition-then-schedule baseline."""

import pytest

from repro.errors import IIOverflowError
from repro.ir import DEFAULT_LATENCIES, OpCode
from repro.ir.transforms import single_use_ddg
from repro.machine import clustered_vliw
from repro.scheduling import (
    TwoPhaseScheduler,
    insert_static_chains,
    partition_ring,
    validate_schedule,
)
from repro.simulator import assert_same_semantics, simulate
from repro.workloads import make_kernel

from .conftest import build_fanout_loop, build_reduction_loop, build_stream_loop


class TestPartition:
    def test_total_assignment(self):
        loop = build_stream_loop()
        machine = clustered_vliw(4)
        assignment = partition_ring(loop.ddg, machine, DEFAULT_LATENCIES)
        assert set(assignment) == set(loop.ddg.op_ids)
        assert all(0 <= c < 4 for c in assignment.values())

    def test_single_cluster_trivial(self):
        loop = build_stream_loop()
        assignment = partition_ring(
            loop.ddg, clustered_vliw(1), DEFAULT_LATENCIES
        )
        assert set(assignment.values()) == {0}

    def test_respects_capability(self):
        from repro.machine import ClusterSpec, MachineSpec

        # Cluster 1 has no multiplier: muls must avoid it.
        machine = MachineSpec(
            name="hetero",
            clusters=(ClusterSpec(), ClusterSpec(mem=1, alu=1, mul=0)),
        )
        loop = build_stream_loop()
        assignment = partition_ring(loop.ddg, machine, DEFAULT_LATENCIES)
        for op in loop.ddg.operations():
            if op.opcode == OpCode.MUL:
                assert assignment[op.op_id] == 0


class TestStaticChains:
    def test_far_references_bridged(self):
        loop = build_stream_loop()
        ddg = loop.ddg.copy()
        machine = clustered_vliw(6)
        # Force a far pair by construction.
        assignment = {op_id: 0 for op_id in ddg.op_ids}
        assignment[2] = 3  # the add sits across the ring from its loads
        extended = insert_static_chains(ddg, assignment, machine)
        moves = [op for op in ddg.operations() if op.opcode == OpCode.MOVE]
        assert moves
        topology = machine.topology
        for edge in ddg.edges():
            if edge.is_flow and edge.src != edge.dst:
                assert topology.distance(
                    extended[edge.src], extended[edge.dst]
                ) <= 1

    def test_chain_semantics_preserved(self):
        loop = build_stream_loop()
        before = loop.ddg.copy()
        ddg = loop.ddg.copy()
        machine = clustered_vliw(6)
        assignment = {op_id: 0 for op_id in ddg.op_ids}
        assignment[2] = 3
        insert_static_chains(ddg, assignment, machine)
        assert_same_semantics(before, ddg, iterations=5)


class TestScheduling:
    @pytest.mark.parametrize("clusters", [1, 2, 4, 6])
    def test_valid_schedules(self, clusters):
        loop = build_stream_loop()
        ddg = single_use_ddg(loop.ddg) if clusters > 1 else loop.ddg.copy()
        scheduler = TwoPhaseScheduler(clustered_vliw(clusters))
        result = scheduler.schedule(ddg)
        validate_schedule(result)
        assert result.scheduler == "two-phase"

    def test_recurrent_kernel(self):
        loop = make_kernel("iir_biquad")
        result = TwoPhaseScheduler(clustered_vliw(4)).schedule(
            single_use_ddg(loop.ddg)
        )
        validate_schedule(result)
        simulate(result, iterations=6)

    def test_fanout_loop_schedules_and_simulates(self):
        loop = build_fanout_loop(consumers=6)
        result = TwoPhaseScheduler(clustered_vliw(5)).schedule(
            single_use_ddg(loop.ddg)
        )
        validate_schedule(result)
        report = simulate(result, iterations=5)
        assert report.ok

    def test_pinning_respected(self):
        loop = build_reduction_loop()
        machine = clustered_vliw(4)
        ddg = single_use_ddg(loop.ddg)
        work = ddg.copy()
        assignment = partition_ring(work, machine, DEFAULT_LATENCIES)
        result = TwoPhaseScheduler(machine).schedule(ddg)
        # Original (non-move) ops must sit on their partition cluster:
        # the partition is deterministic, so recompute and compare.
        for op_id, cluster in assignment.items():
            assert result.placements[op_id].cluster == cluster
