"""Tests for the cycle-accurate validation simulator."""

import pytest

from repro.errors import SimulationError
from repro.ir import DEFAULT_LATENCIES, LoopBuilder
from repro.ir.transforms import single_use_ddg
from repro.machine import clustered_vliw, unclustered_vliw
from repro.scheduling import (
    DistributedModuloScheduler,
    IterativeModuloScheduler,
)
from repro.scheduling.result import ScheduleResult
from repro.scheduling.schedule import Placement
from repro.simulator import collect_trace, simulate
from repro.workloads import make_kernel

from .conftest import build_reduction_loop, build_stream_loop


def ims_result(loop, k=2):
    return IterativeModuloScheduler(unclustered_vliw(k)).schedule(loop.ddg.copy())


def dms_result(loop, clusters=4, transform=False):
    ddg = single_use_ddg(loop.ddg) if transform else loop.ddg.copy()
    return DistributedModuloScheduler(clustered_vliw(clusters)).schedule(ddg)


class TestExecution:
    def test_cycle_model_agrees_with_span(self):
        result = ims_result(build_stream_loop())
        for iterations in (1, 3, 10, 50):
            report = simulate(result, iterations)
            assert report.ok
            # The analytic ramp model and the measured makespan agree to
            # within one (drain) latency.
            assert report.cycles_span <= report.cycles_model + 8
            assert report.cycles_model >= report.cycles_span - 8

    def test_issue_counts(self):
        loop = build_stream_loop()
        result = ims_result(loop)
        report = simulate(result, 10)
        assert report.issued_total == 10 * loop.n_ops
        assert report.issued_useful == 10 * loop.n_ops  # no copies/moves

    def test_useful_excludes_moves_and_copies(self):
        loop = make_kernel("fir_filter", taps=6)
        result = dms_result(loop, clusters=6, transform=True)
        report = simulate(result, 8)
        assert report.issued_total > report.issued_useful

    def test_recurrence_streams_seeded(self):
        result = ims_result(build_reduction_loop())
        report = simulate(result, 20)
        assert report.ok

    def test_clustered_schedule_passes_fifo_checks(self):
        loop = make_kernel("iir_biquad")
        result = dms_result(loop, clusters=5, transform=True)
        report = simulate(result, 16)
        assert report.ok
        assert report.max_queue_occupancy >= 1

    def test_ipc_model_matches_result(self):
        loop = build_stream_loop()
        result = ims_result(loop)
        iterations = 25
        report = simulate(result, iterations)
        assert report.ipc_model == pytest.approx(result.ipc(iterations))

    def test_invalid_iterations(self):
        result = ims_result(build_stream_loop())
        with pytest.raises(SimulationError):
            simulate(result, 0)


class TestViolationDetection:
    def test_broken_dependence_caught(self):
        result = ims_result(build_stream_loop())
        placements = dict(result.placements)
        placements[2] = Placement(0, 0)  # add before its loads complete
        broken = ScheduleResult(
            **{**result.__dict__, "placements": placements}
        )
        with pytest.raises(SimulationError):
            simulate(broken, 4)

    def test_non_strict_reports_instead(self):
        result = ims_result(build_stream_loop())
        placements = dict(result.placements)
        placements[2] = Placement(0, 0)
        broken = ScheduleResult(
            **{**result.__dict__, "placements": placements}
        )
        report = simulate(broken, 4, strict=False)
        assert not report.ok
        assert report.problems

    def test_resource_overflow_caught(self):
        result = ims_result(build_stream_loop())
        placements = dict(result.placements)
        p0 = placements[0]
        placements[1] = Placement(p0.time, p0.cluster)
        placements[4] = Placement(p0.time, p0.cluster)
        broken = ScheduleResult(
            **{**result.__dict__, "placements": placements}
        )
        report = simulate(broken, 2, strict=False)
        assert any("issues on cluster" in p for p in report.problems)


class TestUtilization:
    def test_fu_busy_accounting(self):
        loop = build_stream_loop()
        result = ims_result(loop)
        report = simulate(result, 10)
        from repro.ir import FUKind

        assert report.fu_busy[FUKind.MEM] == 30  # 3 mem ops x 10 iterations
        assert report.fu_busy[FUKind.ALU] == 10
        assert report.fu_busy[FUKind.MUL] == 10

    def test_utilization_bounded(self):
        result = ims_result(build_stream_loop())
        report = simulate(result, 10)
        from repro.ir import FUKind

        for kind in (FUKind.MEM, FUKind.ALU, FUKind.MUL):
            capacity = result.machine.fu_count(kind)
            assert 0.0 <= report.utilization(kind, capacity) <= 1.0


class TestTrace:
    def test_trace_lists_early_cycles(self):
        result = ims_result(build_stream_loop())
        trace = collect_trace(result, iterations=4, max_cycles=12)
        assert trace.entries
        assert all(e.cycle < 12 for e in trace.entries)
        text = trace.render()
        assert "cycle" in text

    def test_trace_iteration_annotation(self):
        result = ims_result(build_stream_loop())
        trace = collect_trace(result, iterations=3, max_cycles=50)
        iterations = {e.iteration for e in trace.entries}
        assert iterations == {0, 1, 2}
