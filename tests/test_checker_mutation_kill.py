"""Mutation-kill suite: no checker rule is dead code.

Each of the checker's rules is violated by a *minimal* mutant of a valid
schedule, and every mutant must be caught twice over — by
``check_schedule`` (the static layer) and by the differential execution
oracle (the dynamic layer).  A rule only one layer can see would let a
scheduler bug slip through whichever layer an experiment happens to run.

The two derived-shape rules (II/stage-count consistency, link bandwidth)
are covered the same way, with the bandwidth rule additionally mirrored
by the timing simulator.
"""

import dataclasses

import pytest

from repro.api import CompilationRequest, Toolchain
from repro.ir import LoopBuilder, OpCode
from repro.ir.loop import Loop
from repro.machine import MachineSpec, clustered_vliw
from repro.machine.cluster import ClusterSpec, PAPER_CLUSTER
from repro.machine.cqrf import QueueFileSpec
from repro.scheduling.checker import check_schedule
from repro.scheduling.pipeline import CompiledLoop
from repro.scheduling.result import ScheduleResult
from repro.scheduling.schedule import Placement
from repro.scheduling.timing import dependence_slack
from repro.simulator import simulate
from repro.validate import verify_compiled
from repro.workloads import make_kernel

from .conftest import build_stream_loop


def compile_on(loop, machine, **kwargs):
    report = Toolchain.default().compile(
        CompilationRequest(loop=loop, machine=machine, **kwargs)
    )
    return report.compiled


def oracle_rejects(compiled: CompiledLoop, mutant: ScheduleResult) -> bool:
    report = verify_compiled(
        dataclasses.replace(compiled, result=mutant, allocation=None)
    )
    return not report.ok


@pytest.fixture(scope="module")
def baseline():
    """One valid compiled loop on the paper's 4-cluster ring."""
    compiled = compile_on(make_kernel("fir_filter", taps=6), clustered_vliw(4))
    assert check_schedule(compiled.result).ok
    assert verify_compiled(compiled).ok
    return compiled


class TestRuleMutants:
    """The six documented rules, one minimal mutant each."""

    def test_rule1_completeness(self, baseline):
        result = baseline.result
        placements = dict(result.placements)
        victim = sorted(placements)[0]
        del placements[victim]
        mutant = dataclasses.replace(result, placements=placements)
        report = check_schedule(mutant)
        assert any("not scheduled" in p for p in report.problems)
        assert oracle_rejects(baseline, mutant)

    def test_rule1_phantom_placement(self, baseline):
        result = baseline.result
        placements = dict(result.placements)
        phantom = max(placements) + 1000
        placements[phantom] = Placement(time=0, cluster=0)
        mutant = dataclasses.replace(result, placements=placements)
        report = check_schedule(mutant)
        assert any("unknown op" in p for p in report.problems)
        assert oracle_rejects(baseline, mutant)

    def test_rule2_capability(self):
        """A MUL op on a cluster without a multiplier."""
        no_mul = ClusterSpec(mem=1, alu=1, mul=0, copy=1)
        machine = MachineSpec(
            name="hetero-no-mul",
            clusters=(PAPER_CLUSTER, no_mul),
        )
        loop = build_stream_loop()
        compiled = compile_on(loop, machine)
        result = compiled.result
        mul_id = next(
            op.op_id
            for op in result.ddg.operations()
            if op.opcode == OpCode.MUL
        )
        placements = dict(result.placements)
        placements[mul_id] = Placement(
            time=placements[mul_id].time, cluster=1
        )
        mutant = dataclasses.replace(result, placements=placements)
        report = check_schedule(mutant)
        assert any("without such a unit" in p for p in report.problems)
        assert oracle_rejects(compiled, mutant)

    def test_rule3_resources(self, baseline):
        """Two same-kind ops forced into one MRT cell of a 1-FU cluster."""
        result = baseline.result
        ddg = result.ddg
        by_kind = {}
        for op in ddg.operations():
            by_kind.setdefault(op.fu_kind, []).append(op.op_id)
        kind, ops = next(
            (kind, ops) for kind, ops in by_kind.items() if len(ops) >= 2
        )
        a, b = ops[0], ops[1]
        pa = result.placements[a]
        placements = dict(result.placements)
        # Same cluster, same row as op a: the cell now holds two ops.
        pb = placements[b]
        delta = (pa.time - pb.time) % result.ii
        placements[b] = Placement(time=pb.time + delta + result.ii, cluster=pa.cluster)
        mutant = dataclasses.replace(result, placements=placements)
        report = check_schedule(mutant)
        assert any("MRT cell" in p for p in report.problems)
        assert oracle_rejects(baseline, mutant)

    def test_rule4_dependence(self, baseline):
        """Tighten one flow edge exactly one cycle past its slack."""
        result = baseline.result
        edge = next(e for e in result.ddg.edges() if e.is_flow)
        slack = dependence_slack(
            result.ddg,
            edge,
            result.placements,
            result.ii,
            result.latencies,
            result.machine,
        )
        old = result.placements[edge.dst]
        new_time = old.time - (slack + 1)
        if new_time < 0:
            pytest.skip("victim edge too close to cycle 0")
        placements = dict(result.placements)
        placements[edge.dst] = Placement(time=new_time, cluster=old.cluster)
        mutant = dataclasses.replace(result, placements=placements)
        report = check_schedule(mutant)
        assert any("dependence violated" in p for p in report.problems)
        assert oracle_rejects(baseline, mutant)

    def test_rule5_communication(self, baseline):
        """Producer and consumer on non-adjacent ring clusters."""
        result = baseline.result
        edge = next(
            e
            for e in result.ddg.edges()
            if e.communicates and e.src != e.dst
        )
        src = result.placements[edge.src]
        far = (result.placements[edge.dst].cluster + 2) % 4
        placements = dict(result.placements)
        placements[edge.src] = Placement(
            time=src.time, cluster=(far + 2) % 4
        )
        placements[edge.dst] = Placement(
            time=result.placements[edge.dst].time, cluster=far
        )
        mutant = dataclasses.replace(result, placements=placements)
        report = check_schedule(mutant)
        if not any("communication conflict" in p for p in report.problems):
            pytest.skip("mutation did not separate the pair (other rule hit)")
        assert oracle_rejects(baseline, mutant)

    def test_rule6_fanout(self):
        """A fan-out-3 value on a clustered machine (single-use bypassed).

        Hand-built schedule: one load feeding three muls feeding three
        stores, placed legally under every other rule.
        """
        b = LoopBuilder("fanout3")
        x = b.load("x")
        for j in range(3):
            b.store(b.mul(x, f"c{j}"), f"y{j}")
        loop = b.build(64)
        ddg = loop.ddg.copy()
        machine = clustered_vliw(2)
        latencies = Toolchain.default().compile(
            CompilationRequest(loop=build_stream_loop(), machine=machine)
        ).compiled.result.latencies
        # ids: 0 load, (1,2) (3,4) (5,6) = (mul, store) pairs.
        placements = {
            0: Placement(time=0, cluster=0),
            1: Placement(time=2, cluster=0),   # mul row 2 c0
            3: Placement(time=3, cluster=1),   # mul row 0 c1
            5: Placement(time=4, cluster=1),   # mul row 1 c1
            2: Placement(time=5, cluster=0),   # store row 2 c0
            4: Placement(time=6, cluster=1),   # store row 0 c1
            6: Placement(time=7, cluster=1),   # store row 1 c1
        }
        result = ScheduleResult(
            loop_name=loop.name,
            machine=machine,
            scheduler="manual",
            ii=3,
            res_mii=3,
            rec_mii=1,
            ddg=ddg,
            placements=placements,
            latencies=latencies,
        )
        report = check_schedule(result)
        assert any("fan-out" in p for p in report.problems)
        # Every other rule is satisfied: fan-out is the only problem.
        assert all("fan-out" in p for p in report.problems), report.problems
        compiled = CompiledLoop(
            loop=loop,
            machine=machine,
            unroll_factor=1,
            result=result,
            allocation=None,
        )
        oracle = verify_compiled(compiled)
        assert not oracle.ok
        assert any("fans out" in p for p in oracle.all_problems)


class TestDerivedShapeRules:
    def test_ii_below_one_rejected(self, baseline):
        mutant = dataclasses.replace(baseline.result, ii=0)
        report = check_schedule(mutant)
        assert any("initiation interval" in p for p in report.problems)
        assert oracle_rejects(baseline, mutant)

    def test_stage_count_lie_rejected(self, baseline):
        """A result whose stage_count property disagrees with its own
        placements (e.g. a buggy subclass or stale metadata)."""

        class LyingResult(ScheduleResult):
            @property
            def stage_count(self):  # type: ignore[override]
                return super().stage_count + 1

        result = baseline.result
        mutant = LyingResult(
            loop_name=result.loop_name,
            machine=result.machine,
            scheduler=result.scheduler,
            ii=result.ii,
            res_mii=result.res_mii,
            rec_mii=result.rec_mii,
            ddg=result.ddg,
            placements=result.placements,
            latencies=result.latencies,
        )
        report = check_schedule(mutant)
        assert any("stage count" in p for p in report.problems)
        assert oracle_rejects(baseline, mutant)


class TestLinkBandwidthRule:
    """The CQRF write-port rule, in the checker and its simulator mirror.

    Hand-built schedule on a ports-limited 2-cluster ring: two loads on
    cluster 0 whose values land in cqrf[c0->c1] on the same row.
    """

    def _bandwidth_case(self, write_ports):
        # Two producers of *different* FU kinds on cluster 0 whose
        # results become ready the same cycle: load x at t=0 (latency 2)
        # and add p+q at t=1 (latency 1) both land in cqrf[c0->c1] at
        # cycle 2 == row 0 of II=2, without any MRT conflict.
        b = LoopBuilder("two_flows")
        x = b.load("x")
        a = b.add("p", "q")
        b.store(b.add(x, "k"), "sx")
        b.store(b.add(a, "m"), "sa")
        loop = b.build(64)
        machine = clustered_vliw(
            2, cqrf=QueueFileSpec(write_ports=write_ports)
        )
        latencies = Toolchain.default().compile(
            CompilationRequest(loop=build_stream_loop(), machine=machine)
        ).compiled.result.latencies
        # ids: 0 load x, 1 add a, 2 add(x,k), 3 store, 4 add(a,m), 5 store.
        placements = {
            0: Placement(time=0, cluster=0),   # mem c0 row 0, birth 2
            1: Placement(time=1, cluster=0),   # alu c0 row 1, birth 2
            2: Placement(time=2, cluster=1),   # alu c1 row 0
            3: Placement(time=3, cluster=1),   # mem c1 row 1
            4: Placement(time=3, cluster=1),   # alu c1 row 1
            5: Placement(time=6, cluster=1),   # mem c1 row 0
        }
        ddg = loop.ddg.copy()
        result = ScheduleResult(
            loop_name=loop.name,
            machine=machine,
            scheduler="manual",
            ii=2,
            res_mii=2,
            rec_mii=1,
            ddg=ddg,
            placements=placements,
            latencies=latencies,
        )
        compiled = CompiledLoop(
            loop=loop,
            machine=machine,
            unroll_factor=1,
            result=result,
            allocation=None,
        )
        return compiled, result

    def test_checker_flags_oversubscribed_link(self):
        compiled, result = self._bandwidth_case(write_ports=1)
        report = check_schedule(result)
        assert any("link bandwidth" in p for p in report.problems), (
            report.problems
        )

    def test_simulator_mirrors_the_rule(self):
        compiled, result = self._bandwidth_case(write_ports=1)
        sim = simulate(result, 6, strict=False)
        assert any("write ports" in p for p in sim.problems), sim.problems

    def test_oracle_mirrors_the_rule(self):
        compiled, result = self._bandwidth_case(write_ports=1)
        oracle = verify_compiled(compiled)
        assert any(
            "write ports" in p for p in oracle.all_problems
        ), oracle.all_problems

    def test_two_ports_accept_the_same_schedule(self):
        compiled, result = self._bandwidth_case(write_ports=2)
        assert check_schedule(result).ok, check_schedule(result).problems
        sim = simulate(result, 6, strict=False)
        assert sim.ok, sim.problems
        assert verify_compiled(compiled).ok

    def test_zero_ports_means_unconstrained(self):
        compiled, result = self._bandwidth_case(write_ports=0)
        assert check_schedule(result).ok
