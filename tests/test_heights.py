"""Tests for the height-based priority function."""

import pytest

from repro.errors import SchedulingError
from repro.ir import DEFAULT_LATENCIES, LoopBuilder
from repro.scheduling import compute_heights, priority_order

from .conftest import build_reduction_loop, build_stream_loop


class TestHeights:
    def test_sinks_have_height_zero(self):
        loop = build_stream_loop()
        heights = compute_heights(loop.ddg, DEFAULT_LATENCIES, ii=4)
        # The store feeds nothing.
        assert heights[4] == 0

    def test_height_accumulates_latency(self):
        loop = build_stream_loop()  # ld(2) -> add(1) -> mul(3) -> st
        heights = compute_heights(loop.ddg, DEFAULT_LATENCIES, ii=4)
        # store=0; mul = 0 + 3; add = mul + 1; load = add + 2.
        assert heights[3] == 3
        assert heights[2] == 4
        assert heights[0] == 6

    def test_loop_carried_edges_discounted(self):
        loop = build_reduction_loop()
        low = compute_heights(loop.ddg, DEFAULT_LATENCIES, ii=10)
        high = compute_heights(loop.ddg, DEFAULT_LATENCIES, ii=2)
        # Larger II discounts loop-carried paths more.
        assert low[3] <= high[3]

    def test_priority_order_sorts_by_height(self):
        loop = build_stream_loop()
        heights = compute_heights(loop.ddg, DEFAULT_LATENCIES, ii=4)
        order = priority_order(heights)
        assert heights[order[0]] == max(heights.values())
        assert heights[order[-1]] == min(heights.values())

    def test_priority_ties_break_by_id(self):
        loop = build_stream_loop()
        heights = compute_heights(loop.ddg, DEFAULT_LATENCIES, ii=4)
        # Both loads have the same height; the smaller id comes first.
        order = priority_order(heights)
        assert order.index(0) < order.index(1)

    def test_ii_below_rec_mii_detected(self):
        b = LoopBuilder("tight")
        s = b.placeholder()
        nxt = b.mul(b.carried(s, 1), "r")  # RecMII = 3
        b.bind(s, nxt)
        loop = b.build()
        with pytest.raises(SchedulingError):
            compute_heights(loop.ddg, DEFAULT_LATENCIES, ii=2)

    def test_invalid_ii(self):
        loop = build_stream_loop()
        with pytest.raises(SchedulingError):
            compute_heights(loop.ddg, DEFAULT_LATENCIES, ii=0)
