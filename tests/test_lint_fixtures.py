"""The lint rules against the fixture corpus in ``tests/lint_fixtures/``.

Every fixture line carrying a trailing ``# EXPECT: rule-id[, rule-id]``
comment must produce exactly those findings on that line, and *no other
line may produce any finding* — so each fixture file proves its rule's
true positives and true negatives in one exact comparison.

``fix_suppress.py`` is exempt from the EXPECT scheme (a trailing marker
would parse as part of the suppression justification); its semantics
are asserted directly in ``test_lint_engine.py``.
"""

from pathlib import Path

import pytest

from repro.analysis import CacheGuard, LintConfig, lint_file
from repro.analysis.rules import get_rule, registered_rules

FIXTURES = Path(__file__).parent / "lint_fixtures"

CONFIG = LintConfig(
    root=FIXTURES,
    paths=(".",),
    determinism_paths=("fix_determinism.py", "fix_determinism_taint.py"),
    api_paths=("fix_exception.py",),
    cache_guards=(
        CacheGuard(
            file="fix_cache.py",
            classes=("Table",),
            guarded=("_rows",),
            caches=("_cache",),
            invalidators=("_invalidate",),
        ),
    ),
)

EXPECT_FILES = sorted(
    path.name
    for path in FIXTURES.glob("fix_*.py")
    if path.name != "fix_suppress.py"
)


def _expectations(source):
    """``{lineno: {rule-id, ...}}`` parsed from trailing EXPECT comments."""
    expected = {}
    for lineno, line in enumerate(source.splitlines(), 1):
        if "# EXPECT:" not in line:
            continue
        ids = line.split("# EXPECT:", 1)[1]
        expected[lineno] = {
            part.strip() for part in ids.split(",") if part.strip()
        }
    return expected


def _run(name):
    rules = [get_rule(rule_id) for rule_id in registered_rules()]
    return lint_file(FIXTURES / name, name, rules, CONFIG)


@pytest.mark.parametrize("name", EXPECT_FILES)
def test_fixture_findings_match_expectations(name):
    source = (FIXTURES / name).read_text()
    expected = _expectations(source)
    assert expected, f"{name} has no EXPECT annotations"
    findings, suppressed = _run(name)
    assert suppressed == 0
    actual = {}
    for finding in findings:
        actual.setdefault(finding.line, set()).add(finding.rule)
    assert actual == expected


def test_every_rule_has_a_fixture_true_positive():
    seen = set()
    for name in EXPECT_FILES:
        for ids in _expectations((FIXTURES / name).read_text()).values():
            seen |= ids
    assert set(registered_rules()) <= seen


def test_findings_carry_location_and_snippet():
    findings, _ = _run("fix_resource.py")
    assert findings
    for finding in findings:
        assert finding.path == "fix_resource.py"
        assert finding.line > 0 and finding.col > 0
        assert finding.snippet  # the offending source line, stripped
        assert finding.rule in finding.render()
        assert f"{finding.line}:{finding.col}" in finding.location()


def test_out_of_scope_file_skips_scoped_rules():
    """Moving the determinism fixture out of the determinism paths
    silences the rule — path scoping, not file content, gates it."""
    config = LintConfig(root=FIXTURES, paths=(".",), determinism_paths=())
    rules = [get_rule(rule_id) for rule_id in registered_rules()]
    findings, _ = lint_file(
        FIXTURES / "fix_determinism.py", "fix_determinism.py", rules, config
    )
    assert not [f for f in findings if f.rule == "determinism"]
