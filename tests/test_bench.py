"""Tests for the scheduler benchmark harness and its regression gate."""

import json
import os

from repro.bench import (
    BENCH_SCHEMA,
    CASE_NAMES,
    Comparison,
    compare_to_baseline,
    dms_speedups,
    geomean,
    has_regression,
    load_baseline,
    profile_case,
    render_table,
    run_bench,
    write_json,
)
from repro.cli import main
from repro.errors import BenchError


def test_bench_error_sits_in_the_taxonomy():
    """Bad bench requests are ReproErrors — caught at the CLI boundary
    like every other domain failure, never a bare ValueError."""
    from repro.errors import ReproError

    assert issubclass(BenchError, ReproError)


def make_doc(cases):
    return {
        "schema": BENCH_SCHEMA,
        "calibration_s": 0.01,
        "cases": cases,
        "meta": {"platform": "test", "python": "3.x"},
    }


def entry(norm, norm_mean=None, best=0.001):
    return {
        "group": "dms",
        "describe": "",
        "best_s": best,
        "mean_s": best,
        "reps": 1,
        "normalized": norm,
        "normalized_mean": norm_mean if norm_mean is not None else norm,
    }


class TestCompare:
    def test_within_tolerance_ok(self):
        base = make_doc({"a": entry(1.0)})
        cur = make_doc({"a": entry(1.2)})
        (result,) = compare_to_baseline(cur, base, tolerance=0.25)
        assert result.status == "ok"
        assert not has_regression([result])

    def test_regression_detected(self):
        base = make_doc({"a": entry(1.0)})
        cur = make_doc({"a": entry(1.3)})
        (result,) = compare_to_baseline(cur, base, tolerance=0.25)
        assert result.status == "regression"
        assert has_regression([result])

    def test_faster_flagged(self):
        base = make_doc({"a": entry(1.0)})
        cur = make_doc({"a": entry(0.5)})
        (result,) = compare_to_baseline(cur, base, tolerance=0.25)
        assert result.status == "faster"

    def test_missing_case_fails(self):
        base = make_doc({"a": entry(1.0), "b": entry(1.0)})
        cur = make_doc({"a": entry(1.0)})
        results = compare_to_baseline(cur, base)
        assert [r.status for r in results] == ["ok", "missing"]
        assert has_regression(results)

    def test_compares_best_against_baseline_mean(self):
        # baseline best 1.0 but mean 1.4: a current best of 1.3 is within
        # 25% of the mean anchor and must pass.
        base = make_doc({"a": entry(1.0, norm_mean=1.4)})
        cur = make_doc({"a": entry(1.3)})
        (result,) = compare_to_baseline(cur, base, tolerance=0.25)
        assert result.status == "ok"

    def test_extra_current_case_ignored(self):
        base = make_doc({"a": entry(1.0)})
        cur = make_doc({"a": entry(1.0), "zz": entry(9.0)})
        results = compare_to_baseline(cur, base)
        assert [r.case for r in results] == ["a"]


class TestHelpers:
    def test_geomean(self):
        assert abs(geomean([2.0, 8.0]) - 4.0) < 1e-9
        assert geomean([]) == 0.0

    def test_dms_speedups(self):
        doc = make_doc({"dms_x": entry(1.0, best=0.002)})
        doc["seed_reference"] = {"dms_x": 0.006}
        assert abs(dms_speedups(doc)["dms_x"] - 3.0) < 1e-9

    def test_render_table_mentions_cases_and_speedup(self):
        doc = make_doc({"dms_x": entry(1.0, best=0.002)})
        doc["seed_reference"] = {"dms_x": 0.006}
        table = render_table(doc)
        assert "dms_x" in table
        assert "geomean" in table

    def test_roundtrip_and_schema_check(self, tmp_path):
        doc = make_doc({"a": entry(1.0)})
        path = str(tmp_path / "bench.json")
        write_json(doc, path)
        assert load_baseline(path)["cases"]["a"]["normalized"] == 1.0
        bad = dict(doc, schema=999)
        write_json(bad, path)
        try:
            load_baseline(path)
        except BenchError as err:
            assert "schema" in str(err)
        else:  # pragma: no cover
            raise AssertionError("schema mismatch accepted")


class TestRunBench:
    def test_quick_run_single_case(self):
        doc = run_bench(quick=True, case_names=["mii_lms"])
        case = doc["cases"]["mii_lms"]
        assert case["best_s"] > 0
        assert case["normalized"] > 0
        assert case["reps"] == 3
        assert doc["schema"] == BENCH_SCHEMA

    def test_unknown_case_rejected(self):
        try:
            run_bench(case_names=["nope"])
        except BenchError as err:
            assert "nope" in str(err)
        else:  # pragma: no cover
            raise AssertionError("unknown case accepted")

    def test_profile_case_output(self):
        report = profile_case("mii_lms", top=5)
        assert "cumulative" in report

    def test_committed_baseline_is_loadable_and_complete(self):
        root = os.path.join(os.path.dirname(__file__), "..")
        baseline = load_baseline(os.path.join(root, "BENCH_scheduler.json"))
        assert sorted(baseline["cases"]) == sorted(CASE_NAMES)
        assert "seed_reference" in baseline


class TestSearchStats:
    def test_scheduler_case_records_search_stats(self):
        doc = run_bench(quick=True, case_names=["dms_narrow"])
        stats = doc["cases"]["dms_narrow"]["search"]
        assert stats["ii"] >= 1
        assert stats["ii_attempts"] >= 1
        assert stats["restarts_per_success"] >= stats["ii_attempts"]
        assert stats["budget_used"] > 0
        assert stats["futility_aborts"] >= 0

    def test_micro_case_has_no_search_stats(self):
        doc = run_bench(quick=True, case_names=["mii_lms"])
        assert "search" not in doc["cases"]["mii_lms"]

    def test_search_override_recorded_and_validated(self):
        doc = run_bench(
            quick=True, case_names=["dms_narrow"], search="ladder"
        )
        assert doc["search_override"] == "ladder"
        try:
            run_bench(search="bogus")
        except BenchError as err:
            assert "bogus" in str(err)
        else:  # pragma: no cover
            raise AssertionError("unknown search policy accepted")

    def test_adaptive_and_ladder_agree_on_ii(self):
        adaptive = run_bench(quick=True, case_names=["dms_unroll8"])
        ladder = run_bench(
            quick=True, case_names=["dms_unroll8"], search="ladder"
        )
        assert (
            adaptive["cases"]["dms_unroll8"]["search"]["ii"]
            == ladder["cases"]["dms_unroll8"]["search"]["ii"]
        )

    def test_bench_search_flag_cli(self, capsys):
        assert (
            main(
                ["bench", "--quick", "--cases", "dms_narrow", "--search", "adaptive"]
            )
            == 0
        )
        capsys.readouterr()


class TestBenchCli:
    def test_bench_command_with_check(self, tmp_path, capsys):
        baseline = str(tmp_path / "base.json")
        out = str(tmp_path / "cur.json")
        assert (
            main(["bench", "--quick", "--cases", "mii_lms", "--out", baseline]) == 0
        )
        capsys.readouterr()
        code = main(
            [
                "bench",
                "--quick",
                "--cases",
                "mii_lms",
                "--check",
                "--baseline",
                baseline,
                "--tolerance",
                "5.0",
                "--out",
                out,
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "benchmark gate: ok" in printed
        assert json.load(open(out))["cases"]["mii_lms"]["best_s"] > 0

    def test_bench_profile_cli(self, capsys):
        assert main(["bench", "--profile", "mii_lms"]) == 0
        assert "cumulative" in capsys.readouterr().out

    def test_bench_unknown_case_exit_2(self, capsys):
        assert main(["bench", "--cases", "bogus"]) == 2

    def test_bench_unknown_profile_case_exit_2(self, capsys):
        assert main(["bench", "--profile", "bogus"]) == 2
        assert "unknown bench case" in capsys.readouterr().err
