"""Tests for modulo variable expansion analysis."""

import pytest

from repro.machine import unclustered_vliw
from repro.registers import mve_report, mve_summary, register_pressure
from repro.scheduling import IterativeModuloScheduler
from repro.scheduling.pipeline import compile_loop
from repro.workloads import make_kernel

from .conftest import build_reduction_loop, build_stream_loop


def result_for(loop, k=2):
    return IterativeModuloScheduler(unclustered_vliw(k)).schedule(loop.ddg.copy())


class TestDegrees:
    def test_every_consumed_value_has_a_degree(self):
        result = result_for(build_stream_loop())
        report = mve_report(result)
        consumed = {
            s.producer
            for op in result.ddg.operations()
            for s in op.srcs
            if not s.is_external
        }
        assert set(report.degrees) == consumed

    def test_degree_formula(self):
        result = result_for(build_stream_loop())
        report = mve_report(result)
        ii = result.ii
        for producer, degree in report.degrees.items():
            birth = result.placements[producer].time + result.latencies.latency(
                result.ddg.op(producer).opcode
            )
            last_read = max(
                result.placements[c.op_id].time + s.omega * ii
                for c in result.ddg.operations()
                for s in c.srcs
                if not s.is_external and s.producer == producer
            )
            assert degree == max(0, last_read - birth) // ii + 1

    def test_degrees_at_least_one(self):
        result = result_for(build_reduction_loop(), k=3)
        report = mve_report(result)
        assert all(d >= 1 for d in report.degrees.values())

    def test_unroll_variants_ordering(self):
        result = result_for(build_reduction_loop(), k=3)
        report = mve_report(result)
        assert report.kernel_unroll_max <= report.kernel_unroll_lcm
        assert report.kernel_unroll_lcm % report.kernel_unroll_max == 0 or True
        assert report.total_registers >= report.n_values

    def test_carried_lifetimes_set_the_expansion_degree(self):
        # An 8-tap FIR reuses each sample for 7 further iterations: its
        # lifetime spans ~7*II regardless of II, so MVE must unroll the
        # kernel ~8x on a conventional RF — the cost queues avoid.
        loop = make_kernel("fir_filter", taps=8)
        report = mve_report(
            compile_loop(loop, unclustered_vliw(1), unroll=1).result
        )
        assert report.kernel_unroll_max == 8

    def test_wide_machines_need_more_registers(self):
        loop = make_kernel("fir_filter", taps=8)
        narrow = mve_report(
            compile_loop(loop, unclustered_vliw(1), unroll=1).result
        )
        wide = mve_report(
            compile_loop(loop, unclustered_vliw(6), unroll=1).result
        )
        assert wide.total_registers >= narrow.total_registers

    def test_registers_bound_maxlive(self):
        # MVE assigns one register per (value, live instance): at least
        # the schedule's MaxLive.
        result = result_for(build_stream_loop(), k=3)
        report = mve_report(result)
        assert report.total_registers >= register_pressure(result)


class TestSummary:
    def test_summary_text(self):
        result = result_for(build_stream_loop())
        text = mve_summary([mve_report(result)])
        assert "kernel unroll" in text

    def test_empty(self):
        assert "no MVE reports" in mve_summary([])
