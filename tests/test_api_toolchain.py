"""Tests for the pass registry, toolchain composition and reports."""

import pytest

from repro.api import (
    DEFAULT_PASSES,
    PASS_REGISTRY,
    CompilationRequest,
    Pass,
    SchedulePass,
    Toolchain,
    get_pass,
    register_pass,
    schedule_fingerprint,
)
from repro.errors import SchedulingError, ToolchainError
from repro.ir.transforms import unroll_loop
from repro.machine import clustered_vliw, unclustered_vliw
from repro.scheduling.pipeline import compile_loop
from repro.workloads import make_kernel

from .conftest import build_reduction_loop, build_stream_loop


class TestRegistry:
    def test_builtin_passes_registered(self):
        for name in ("unroll", "single_use", "schedule", "allocate", "codegen"):
            assert get_pass(name).name == name
        assert "schedule_two_phase" in PASS_REGISTRY

    def test_unknown_pass_rejected(self):
        with pytest.raises(ToolchainError, match="unknown pass"):
            get_pass("no_such_pass")

    def test_duplicate_registration_rejected(self):
        class Dup(Pass):
            name = "unroll"

            def run(self, ctx):  # pragma: no cover - never run
                pass

        with pytest.raises(ToolchainError, match="already registered"):
            register_pass(Dup())

    def test_explicit_override_allowed_and_reversible(self):
        original = PASS_REGISTRY["unroll"]

        class Override(Pass):
            name = "unroll"

            def run(self, ctx):  # pragma: no cover - never run
                pass

        try:
            register_pass(Override(), replace=True)
            assert isinstance(get_pass("unroll"), Override)
        finally:
            register_pass(original, replace=True)
        assert get_pass("unroll") is original

    def test_anonymous_pass_rejected(self):
        class NoName(Pass):
            def run(self, ctx):  # pragma: no cover - never run
                pass

        with pytest.raises(ToolchainError, match="no name"):
            register_pass(NoName())


class TestComposition:
    def test_default_order_matches_paper_flow(self):
        assert Toolchain.default().pass_names == DEFAULT_PASSES
        assert Toolchain.full().pass_names == DEFAULT_PASSES + ("codegen",)

    def test_with_pass_swaps_in_place(self):
        chain = Toolchain.default().with_pass("schedule", "schedule_two_phase")
        assert chain.pass_names == (
            "unroll",
            "single_use",
            "schedule_two_phase",
            "allocate",
        )

    def test_without_pass_removes(self):
        chain = Toolchain.default().without_pass("allocate")
        assert "allocate" not in chain.pass_names

    def test_unknown_slot_rejected(self):
        with pytest.raises(ToolchainError, match="no pass"):
            Toolchain.default().with_pass("nope", "schedule")

    def test_duplicate_pipeline_names_rejected(self):
        with pytest.raises(ToolchainError, match="duplicate"):
            Toolchain(["unroll", "unroll", "schedule"])

    def test_insert_runs_custom_pass_in_order(self):
        calls = []

        class Probe(Pass):
            name = "probe"

            def __init__(self, log):
                self._log = log

            def run(self, ctx):
                self._log.append((self.name, ctx.result is not None))

        chain = Toolchain.default().insert_after("schedule", Probe(calls))
        request = CompilationRequest(
            loop=build_stream_loop(), machine=unclustered_vliw(2)
        )
        report = chain.compile(request)
        # The probe ran exactly once, after scheduling.
        assert calls == [("probe", True)]
        assert [t.pass_name for t in report.timings] == [
            "unroll",
            "single_use",
            "schedule",
            "probe",
            "allocate",
        ]

    def test_pipeline_without_scheduler_rejected(self):
        chain = Toolchain(["unroll", "single_use"])
        request = CompilationRequest(
            loop=build_stream_loop(), machine=unclustered_vliw(1)
        )
        with pytest.raises(ToolchainError, match="no schedule"):
            chain.compile(request)


class TestCompile:
    def test_matches_compile_loop_shim(self):
        loop = make_kernel("dot_product")
        machine = clustered_vliw(4)
        via_shim = compile_loop(loop, machine, equivalent_k=4)
        report = Toolchain.default().compile(
            CompilationRequest(loop=loop, machine=machine, equivalent_k=4)
        )
        assert schedule_fingerprint(report.result) == schedule_fingerprint(
            via_shim.result
        )
        assert report.compiled.unroll_factor == via_shim.unroll_factor
        assert (report.compiled.allocation is None) == (via_shim.allocation is None)

    def test_report_carries_timings_trajectory_diagnostics(self):
        report = Toolchain.default().compile(
            CompilationRequest(
                loop=build_reduction_loop(), machine=clustered_vliw(4), equivalent_k=4
            )
        )
        assert [t.pass_name for t in report.timings] == list(DEFAULT_PASSES)
        assert all(t.seconds >= 0 for t in report.timings)
        assert report.total_seconds == pytest.approx(
            sum(t.seconds for t in report.timings)
        )
        # Trajectory: the distinct II candidates the search visited,
        # ending at the achieved II.  A galloping policy may overshoot
        # and skip rungs, so the walk is not necessarily contiguous —
        # but it is duplicate-free and every entry is a real candidate.
        result = report.result
        assert report.ii_trajectory[-1] == result.ii
        assert len(report.ii_trajectory) == result.stats.ii_attempts
        assert len(set(report.ii_trajectory)) == len(report.ii_trajectory)
        assert all(ii >= result.mii for ii in report.ii_trajectory)
        assert report.ii_trajectory == tuple(result.ii_trajectory)
        assert len(report.diagnostics) == len(DEFAULT_PASSES)
        assert not report.cache_hit

    def test_report_to_dict_is_json_shaped(self):
        import json

        report = Toolchain.default().compile(
            CompilationRequest(loop=build_stream_loop(), machine=unclustered_vliw(2))
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["scheduler"] == "ims"
        assert payload["ii"] == report.result.ii
        assert "timings_ms" in payload

    def test_unrolled_loop_rejected(self):
        loop = unroll_loop(build_stream_loop(), 2)
        with pytest.raises(SchedulingError, match="already unrolled"):
            compile_loop(loop, unclustered_vliw(2))

    def test_forced_scheduler_overrides_machine_shape(self):
        # Figure 4's k=1 point: DMS degenerates on the single-cluster
        # machine but must still be labelled "dms".
        report = Toolchain.default().compile(
            CompilationRequest(
                loop=build_stream_loop(),
                machine=clustered_vliw(1),
                scheduler="dms",
            )
        )
        assert report.result.scheduler == "dms"
        auto = Toolchain.default().compile(
            CompilationRequest(loop=build_stream_loop(), machine=clustered_vliw(1))
        )
        assert auto.result.scheduler == "ims"

    def test_two_phase_swap_changes_scheduler(self):
        chain = Toolchain.default().with_pass("schedule", "schedule_two_phase")
        report = chain.compile(
            CompilationRequest(
                loop=build_stream_loop(), machine=clustered_vliw(4), equivalent_k=4
            )
        )
        assert report.result.scheduler == "two-phase"

    def test_codegen_pass_emits_assembly(self):
        report = Toolchain.full().compile(
            CompilationRequest(
                loop=make_kernel("daxpy"), machine=clustered_vliw(2), equivalent_k=2
            )
        )
        assert "II=" in report.artifacts["assembly"]

    def test_invalid_request_knobs_rejected(self):
        loop = build_stream_loop()
        with pytest.raises(ToolchainError, match="unknown scheduler"):
            CompilationRequest(
                loop=loop, machine=unclustered_vliw(1), scheduler="vliw"
            )
        with pytest.raises(ToolchainError, match="unroll"):
            CompilationRequest(loop=loop, machine=unclustered_vliw(1), unroll=0)
