"""Shared fixtures and DDG factories for the test suite."""

from __future__ import annotations

import pytest

from repro.ir import DEFAULT_LATENCIES, LoopBuilder
from repro.machine import clustered_vliw, unclustered_vliw


@pytest.fixture
def latencies():
    return DEFAULT_LATENCIES


@pytest.fixture
def clustered4():
    return clustered_vliw(4)


@pytest.fixture
def clustered8():
    return clustered_vliw(8)


@pytest.fixture
def unclustered2():
    return unclustered_vliw(2)


def build_stream_loop(name: str = "stream", trip_count: int = 64):
    """ld, ld, add, mul, st — recurrence-free."""
    b = LoopBuilder(name)
    x = b.load("x[i]")
    y = b.load("y[i]")
    b.store(b.mul(b.add(x, y), "k"), "z[i]")
    return b.build(trip_count)


def build_reduction_loop(name: str = "reduction", trip_count: int = 64):
    """acc += x[i] * y[i] — one recurrence circuit."""
    b = LoopBuilder(name)
    x = b.load("x[i]")
    y = b.load("y[i]")
    acc = b.placeholder()
    total = b.add(b.mul(x, y), b.carried(acc, 1), tag="acc")
    b.bind(acc, total)
    return b.build(trip_count)


def build_fanout_loop(name: str = "fanout", consumers: int = 5, trip_count: int = 64):
    """One load feeding *consumers* multiplies (fan-out stress)."""
    b = LoopBuilder(name)
    x = b.load("x[i]")
    for j in range(consumers):
        b.store(b.mul(x, f"c{j}"), f"y{j}[i]")
    return b.build(trip_count)


@pytest.fixture
def stream_loop():
    return build_stream_loop()


@pytest.fixture
def reduction_loop():
    return build_reduction_loop()


@pytest.fixture
def fanout_loop():
    return build_fanout_loop()
