"""Setuptools shim for environments without PEP 660 editable support.

All project metadata — including the version, single-sourced from
``repro.__version__`` — lives in ``pyproject.toml``; this file exists
only so legacy ``python setup.py``-style tooling keeps working.
"""

from setuptools import setup

setup()
