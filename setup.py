"""Setuptools shim for environments without PEP 660 editable support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Distributed Modulo Scheduling (DMS) for clustered VLIW architectures "
        "- reproduction of Fernandes, Llosa & Topham, HPCA 1999"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["networkx>=3.0", "numpy>=1.24"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
